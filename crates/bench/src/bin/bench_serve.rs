//! BENCH serve — concurrent snapshot serving under streaming ingest.
//!
//! Three arms, mirroring the sgl-serve contract, emitted as
//! `target/repro/BENCH_serve.json` and tracked across PRs via the
//! committed snapshot `BENCH_serve.json` at the repo root:
//!
//! * **fixed-snapshot** — reader threads hammer micro-batched
//!   effective-resistance queries against a frozen snapshot at several
//!   reader counts. Every response must be version-tagged `v0` and
//!   bit-identical to the canonical single-threaded answers (the
//!   serving extension of the `tests/parallel_equivalence.rs`
//!   determinism contract); throughput and latency percentiles are
//!   recorded per reader count.
//! * **ingest-churn** — readers keep hammering while the writer ingests
//!   measurement batches and republishes. No reader ever stalls on a
//!   publish: latency percentiles stay bounded, and every response must
//!   bit-match the canonical answers *for the version that served it* —
//!   one snapshot per answer, never a torn mix.
//! * **revision** — the solver-revision counters of the final snapshot:
//!   on the default policy the republish cadence must ride incremental
//!   delta updates, not per-refresh refactorizations.
//!
//! Usage: `bench_serve [--quick] [--readers N] [--queries Q]
//! [--window-us W] [--schema-against PATH]`
//!
//! `--schema-against` compares the emitted JSON's key set against a
//! tracked snapshot and fails on drift (the CI smoke mode).

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sgl_bench::{banner, fix, repro_dir, time, Args, Table};
use sgl_core::{sample_node_pairs, Measurements, SglConfig, SglSession};
use sgl_linalg::{par, DenseMatrix};
use sgl_serve::{ServeHandle, ServeOptions, SglServer};

/// Node pairs per resistance query (one micro-batch submission).
const PAIRS_PER_QUERY: usize = 8;
/// Distinct query sets in the round-robin pool.
const QUERY_POOL: usize = 32;

/// One recorded reader response: which query set, which snapshot
/// version answered, the values, and the end-to-end latency.
struct Response {
    set: usize,
    version: u64,
    values: Vec<f64>,
    latency_s: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Pool of deterministic query sets over `n` nodes.
fn query_pool(n: usize) -> Vec<Vec<(usize, usize)>> {
    (0..QUERY_POOL)
        .map(|i| sample_node_pairs(n, PAIRS_PER_QUERY, 0xA11C + i as u64))
        .collect()
}

/// Spawn `readers` threads, each issuing `queries` round-robin pool
/// queries through `handle`, until done (fixed mode) or until `stop`
/// (churn mode, `queries` as a cap). Returns all recorded responses.
fn hammer(
    handle: &ServeHandle,
    pool: &Arc<Vec<Vec<(usize, usize)>>>,
    readers: usize,
    queries: usize,
    stop: Option<&Arc<AtomicBool>>,
) -> Vec<Response> {
    let mut threads = Vec::new();
    for r in 0..readers {
        let handle = handle.clone();
        let pool = Arc::clone(pool);
        let stop = stop.map(Arc::clone);
        threads.push(std::thread::spawn(move || {
            let mut out = Vec::with_capacity(queries.min(4096));
            for q in 0..queries {
                if let Some(stop) = &stop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                let set = (q * readers + r) % pool.len();
                let t0 = Instant::now();
                let resp = handle.resistances(&pool[set]).expect("resistance query");
                out.push(Response {
                    set,
                    version: resp.version,
                    values: resp.value,
                    latency_s: t0.elapsed().as_secs_f64(),
                });
            }
            out
        }));
    }
    threads
        .into_iter()
        .flat_map(|t| t.join().expect("reader panicked"))
        .collect()
}

/// Latency percentiles (seconds) of a response set.
fn latencies(responses: &[Response]) -> (f64, f64, f64) {
    let mut lat: Vec<f64> = responses.iter().map(|r| r.latency_s).collect();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (
        percentile(&lat, 0.50),
        percentile(&lat, 0.99),
        lat.last().copied().unwrap_or(0.0),
    )
}

fn json_keys(text: &str) -> Vec<String> {
    let mut keys = std::collections::BTreeSet::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            if let Some(end) = text[i + 1..].find('"') {
                let key = &text[i + 1..i + 1 + end];
                let rest = text[i + 1 + end + 1..].trim_start();
                if rest.starts_with(':') {
                    keys.insert(key.to_string());
                }
                i += end + 2;
                continue;
            }
        }
        i += 1;
    }
    keys.into_iter().collect()
}

fn main() {
    let args = Args::from_env();
    let quick = args.has("quick");
    let side: usize = args.get("side", if quick { 20 } else { 40 });
    let m: usize = args.get("m", if quick { 12 } else { 20 });
    let queries: usize = args.get("queries", if quick { 40 } else { 120 });
    let window_us: u64 = args.get("window-us", 200);
    let max_readers: usize = args.get("readers", if quick { 2 } else { 4 });
    // Reader threads are OS threads hammering a lock-free snapshot, so
    // oversubscription is allowed — but record the host's real
    // parallelism so the tracked latency numbers are interpretable.
    let effective_threads = max_readers.min(par::max_threads());
    if max_readers > par::max_threads() {
        sgl_trace::warn!(
            "{max_readers} reader threads requested but the host has only {} cores; \
             reader arms will oversubscribe (effective_threads = {effective_threads})",
            par::max_threads()
        );
    }
    let reader_counts: Vec<usize> = {
        let mut counts = vec![1];
        let mut c = 2;
        while c <= max_readers {
            counts.push(c);
            c *= 2;
        }
        counts
    };

    let truth = sgl_datasets::grid2d(side, side);
    let n = truth.num_nodes();
    banner(
        "BENCH serve",
        "lock-free snapshot serving: reader throughput, ingest churn, revision cadence",
        &[
            ("nodes", n.to_string()),
            ("M", m.to_string()),
            ("queries/reader", queries.to_string()),
            ("reader_counts", format!("{reader_counts:?}")),
            ("pairs/query", PAIRS_PER_QUERY.to_string()),
            ("window_us", window_us.to_string()),
            ("effective_threads", effective_threads.to_string()),
            ("host_cores", par::max_threads().to_string()),
        ],
    );

    // Learn the initial model from ~60% of the measurement columns,
    // under-fitted (small iteration cap) so the streamed remainder keeps
    // adding edges — the regime the incremental revisions target.
    let all = Measurements::generate(&truth, m, 7).expect("measurements");
    let column_batch = |lo: usize, hi: usize| {
        let cols: Vec<Vec<f64>> = (lo..hi).map(|j| all.voltages().column(j)).collect();
        Measurements::from_voltages(DenseMatrix::from_columns(&cols)).expect("batch")
    };
    let initial_cols = (m * 3) / 5;
    let config = SglConfig::default().with_tol(0.0).with_max_iterations(6);
    let mut session =
        SglSession::from_owned(config, column_batch(0, initial_cols)).expect("session");
    session.run_to_completion().expect("initial learn");

    // `--trace PATH` records the serving timeline — query / batch_solve /
    // respond spans, queue-wait intervals, ingest / publish events — and
    // exports it as a Chrome trace at exit. Enabled only for the serving
    // phase so the learn preamble does not drown the timeline.
    let trace_path = {
        let flag = args.get("trace", String::new());
        (!flag.is_empty()).then(|| std::path::PathBuf::from(flag))
    };
    if trace_path.is_some() {
        sgl_trace::clear();
        sgl_trace::enable();
    }

    let opts = ServeOptions {
        batch_window: Duration::from_micros(window_us),
        ..ServeOptions::default()
    };
    let server = SglServer::new(session, opts).expect("server");
    let reader = server.handle();
    let pool = Arc::new(query_pool(n));

    // ---- Arm 1: fixed snapshot, scaling reader counts -------------------
    let v0 = reader.snapshot();
    assert_eq!(v0.version(), 0);
    let canonical_v0: Vec<Vec<f64>> = pool
        .iter()
        .map(|pairs| v0.resistances(pairs).expect("canonical answers"))
        .collect();

    let mut table = Table::new(&["readers", "queries", "qps", "p50_ms", "p99_ms", "wall_s"]);
    let mut fixed_rows = Vec::new();
    for &readers in &reader_counts {
        let (responses, wall_s) = time(|| hammer(&reader, &pool, readers, queries, None));
        for resp in &responses {
            assert_eq!(resp.version, 0, "fixed-snapshot query left version 0");
            assert_eq!(
                resp.values, canonical_v0[resp.set],
                "response drifted from canonical at {} readers",
                readers
            );
        }
        let (p50, p99, _max) = latencies(&responses);
        let qps = responses.len() as f64 / wall_s;
        table.row(&[
            readers.to_string(),
            responses.len().to_string(),
            fix(qps, 1),
            fix(p50 * 1e3, 3),
            fix(p99 * 1e3, 3),
            fix(wall_s, 3),
        ]);
        fixed_rows.push((readers, responses.len(), qps, p50, p99, wall_s));
    }
    println!("\nfixed snapshot (v0), bit-identical at every reader count ✓");
    table.print();

    // ---- Arm 2: readers hammer through ingest + publishes ---------------
    // Canonical answers are captured per published version from pinned
    // snapshots; every concurrent response must match the canonical set
    // of exactly the version that answered it.
    let churn_readers = *reader_counts.last().expect("non-empty");
    let ingest_batches = 3usize;
    let stop = Arc::new(AtomicBool::new(false));
    let churn_handle = reader.clone();
    let churn_pool = Arc::clone(&pool);
    let churn_stop = Arc::clone(&stop);
    let churn = std::thread::spawn(move || {
        hammer(
            &churn_handle,
            &churn_pool,
            churn_readers,
            usize::MAX / 2,
            Some(&churn_stop),
        )
    });

    let mut canonical: Vec<Vec<Vec<f64>>> = vec![canonical_v0];
    let cols_left = m - initial_cols;
    let per_batch = cols_left / ingest_batches;
    let (_, churn_wall) = time(|| {
        for b in 0..ingest_batches {
            let lo = initial_cols + b * per_batch;
            let hi = if b + 1 == ingest_batches {
                m
            } else {
                lo + per_batch
            };
            server.ingest(column_batch(lo, hi)).expect("ingest");
            server.flush().expect("flush");
            let snap = reader.snapshot();
            canonical.push(
                pool.iter()
                    .map(|pairs| snap.resistances(pairs).expect("canonical answers"))
                    .collect(),
            );
        }
    });
    stop.store(true, Ordering::Relaxed);
    let churn_responses = churn.join().expect("churn readers panicked");

    let mut versions_observed = std::collections::BTreeSet::new();
    for resp in &churn_responses {
        let v = resp.version as usize;
        assert!(v < canonical.len(), "response from unpublished version {v}");
        versions_observed.insert(resp.version);
        assert_eq!(
            resp.values, canonical[v][resp.set],
            "torn read: response does not match canonical answers of version {v}"
        );
    }
    let (churn_p50, churn_p99, churn_max) = latencies(&churn_responses);
    let stats = server.stats();
    assert_eq!(stats.snapshots_published as usize, ingest_batches);
    println!(
        "\ningest churn: {} responses across versions {:?} while publishing {} snapshots, \
         every response consistent with exactly one snapshot ✓",
        churn_responses.len(),
        versions_observed,
        stats.snapshots_published,
    );
    println!(
        "  latency p50 {:.3} ms, p99 {:.3} ms, max {:.3} ms over {:.3} s of ingest",
        churn_p50 * 1e3,
        churn_p99 * 1e3,
        churn_max * 1e3,
        churn_wall,
    );

    // ---- Arm 3: revision cadence on the default policy ------------------
    let final_snap = reader.snapshot();
    let rev = final_snap.revision_stats();
    let publishes = stats.snapshots_published as usize;
    assert!(
        rev.delta_updates >= 1,
        "default-policy republish cadence never took the delta-update path: {rev:?}"
    );
    assert!(
        rev.handles_built < publishes + 1,
        "every publish refactorized ({} builds for {} publishes): {rev:?}",
        rev.handles_built,
        publishes
    );
    println!(
        "\nrevisions: {} publishes rode {} delta updates (rank {}) on {} full builds ✓",
        publishes, rev.delta_updates, rev.delta_rank_applied, rev.handles_built
    );

    // Server-side latency: measured inside the micro-batcher for every
    // query (including the collection window and queue wait), the
    // authoritative numbers — the bench-side per-arm percentiles above
    // only see the client clock and miss abandoned requests.
    println!(
        "server-side latency: p50 {:.3} ms, p99 {:.3} ms; queue wait p50 {:.3} ms, \
         p99 {:.3} ms over {} queries",
        stats.query_latency_p50_ms,
        stats.query_latency_p99_ms,
        stats.queue_wait_p50_ms,
        stats.queue_wait_p99_ms,
        stats.queries_answered,
    );
    assert!(
        stats.query_latency_p99_ms > 0.0,
        "server-side latency histogram recorded nothing"
    );

    if let Some(path) = &trace_path {
        sgl_trace::disable();
        let events = sgl_trace::take_events();
        sgl_trace::write_chrome_trace(path, &events).expect("write chrome trace");
        println!("wrote {} ({} events)", path.display(), events.len());
    }

    // Hand-rolled JSON (no serde in the offline image).
    let mut json = String::from("{\n  \"bench\": \"serve\",\n");
    json.push_str(&format!("  \"host_cores\": {},\n", par::max_threads()));
    json.push_str(&format!("  \"effective_threads\": {effective_threads},\n"));
    json.push_str(&format!(
        "  \"args\": \"side={side} m={m} queries={queries} readers={max_readers} \
         window_us={window_us} quick={quick}\",\n"
    ));
    json.push_str(&format!("  \"nodes\": {n},\n"));
    json.push_str(&format!("  \"pairs_per_query\": {PAIRS_PER_QUERY},\n"));
    json.push_str("  \"fixed_snapshot\": [\n");
    for (i, (readers, count, qps, p50, p99, wall_s)) in fixed_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"readers\": {}, \"queries\": {}, \"qps\": {:.3}, \
             \"p50_ms\": {:.6}, \"p99_ms\": {:.6}, \"wall_s\": {:.9}, \
             \"version\": 0, \"bit_identical\": true}}{}\n",
            readers,
            count,
            qps,
            p50 * 1e3,
            p99 * 1e3,
            wall_s,
            if i + 1 < fixed_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"ingest_churn\": {{\"readers\": {}, \"responses\": {}, \
         \"versions_observed\": {}, \"snapshots_published\": {}, \
         \"measurements_ingested\": {}, \"churn_wall_s\": {:.9}, \
         \"p50_ms\": {:.6}, \"p99_ms\": {:.6}, \"max_ms\": {:.6}, \
         \"consistent\": true}},\n",
        churn_readers,
        churn_responses.len(),
        versions_observed.len(),
        stats.snapshots_published,
        stats.measurements_ingested,
        churn_wall,
        churn_p50 * 1e3,
        churn_p99 * 1e3,
        churn_max * 1e3,
    ));
    json.push_str(&format!(
        "  \"revision\": {{\"publishes\": {}, \"handles_built\": {}, \
         \"delta_updates\": {}, \"delta_rank_applied\": {}, \
         \"refreshes_forced\": {}, \"delta_path_on_default_arm\": true}},\n",
        publishes,
        rev.handles_built,
        rev.delta_updates,
        rev.delta_rank_applied,
        rev.refreshes_on_rank + rev.refreshes_on_iters + rev.refreshes_on_numeric,
    ));
    json.push_str(&format!(
        "  \"server_latency\": {{\"query_p50_ms\": {:.6}, \"query_p99_ms\": {:.6}, \
         \"queue_wait_p50_ms\": {:.6}, \"queue_wait_p99_ms\": {:.6}, \
         \"measured\": \"in-server\"}},\n",
        stats.query_latency_p50_ms,
        stats.query_latency_p99_ms,
        stats.queue_wait_p50_ms,
        stats.queue_wait_p99_ms,
    ));
    json.push_str(&format!(
        "  \"serve_stats\": {{\"queries_answered\": {}, \"batches_executed\": {}, \
         \"requests_coalesced\": {}, \"rhs_columns_solved\": {}, \
         \"largest_batch\": {}}}\n}}\n",
        stats.queries_answered,
        stats.batches_executed,
        stats.requests_coalesced,
        stats.rhs_columns_solved,
        stats.largest_batch,
    ));

    let path = repro_dir().join("BENCH_serve.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_serve.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_serve.json");
    println!("\nwrote {}", path.display());

    // Schema drift check against the tracked snapshot (CI smoke mode).
    if let Some(tracked) = {
        let flag = args.get("schema-against", String::new());
        (!flag.is_empty()).then_some(flag)
    } {
        let snapshot = std::fs::read_to_string(&tracked)
            .unwrap_or_else(|e| panic!("cannot read tracked snapshot {tracked}: {e}"));
        let expect = json_keys(&snapshot);
        let got = json_keys(&json);
        assert_eq!(
            got, expect,
            "BENCH_serve.json schema drifted from the tracked snapshot {tracked}; \
             regenerate and commit it alongside the change"
        );
        println!("schema matches tracked snapshot {tracked} ✓");
    }
}
