//! BENCH serve — concurrent snapshot serving under streaming ingest.
//!
//! Three arms, mirroring the sgl-serve contract, emitted as
//! `target/repro/BENCH_serve.json` and tracked across PRs via the
//! committed snapshot `BENCH_serve.json` at the repo root:
//!
//! * **fixed-snapshot** — reader threads hammer micro-batched
//!   effective-resistance queries against a frozen snapshot at several
//!   reader counts. Every response must be version-tagged `v0` and
//!   bit-identical to the canonical single-threaded answers (the
//!   serving extension of the `tests/parallel_equivalence.rs`
//!   determinism contract); throughput and latency percentiles are
//!   recorded per reader count.
//! * **ingest-churn** — readers keep hammering while the writer ingests
//!   measurement batches and republishes. No reader ever stalls on a
//!   publish: latency percentiles stay bounded, and every response must
//!   bit-match the canonical answers *for the version that served it* —
//!   one snapshot per answer, never a torn mix.
//! * **revision** — the solver-revision counters of the final snapshot:
//!   on the default policy the republish cadence must ride incremental
//!   delta updates, not per-refresh refactorizations.
//! * **overload** — the network front-end under deterministic chaos: a
//!   fresh [`sgl_net::NetServer`] takes waves of a ~10×-capacity
//!   request burst interleaved with seeded adversarial clients
//!   (malformed requests, half-open connections, mid-request
//!   disconnects) while the ingest driver streams batches over HTTP —
//!   one of them killing the writer via an injected
//!   [`FaultPlan`] panic. Asserts shed-not-crash
//!   (excess load gets `429 Retry-After`, admitted requests finish),
//!   zero torn responses (every `200` bit-matches the pinned snapshot
//!   of its wave), bounded queue depth, and p99 within the request
//!   deadline. Always runs quick-sized so the JSON schema is stable;
//!   `--net` scales it into the full soak.
//!
//! Usage: `bench_serve [--quick] [--net] [--readers N] [--queries Q]
//! [--window-us W] [--chaos-seed S] [--schema-against PATH]`
//!
//! `--schema-against` compares the emitted JSON's key set against a
//! tracked snapshot and fails on drift (the CI smoke mode).

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sgl_bench::{banner, fix, repro_dir, time, Args, Table};
use sgl_core::{sample_node_pairs, FaultKind, FaultPlan, Measurements, SglConfig, SglSession};
use sgl_linalg::{par, DenseMatrix, Rng};
use sgl_net::server::loopback;
use sgl_net::{client, json as netjson, NetOptions, NetServer};
use sgl_serve::{ServeHandle, ServeOptions, SglServer};

/// Node pairs per resistance query (one micro-batch submission).
const PAIRS_PER_QUERY: usize = 8;
/// Distinct query sets in the round-robin pool.
const QUERY_POOL: usize = 32;

/// One recorded reader response: which query set, which snapshot
/// version answered, the values, and the end-to-end latency.
struct Response {
    set: usize,
    version: u64,
    values: Vec<f64>,
    latency_s: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Pool of deterministic query sets over `n` nodes.
fn query_pool(n: usize) -> Vec<Vec<(usize, usize)>> {
    (0..QUERY_POOL)
        .map(|i| sample_node_pairs(n, PAIRS_PER_QUERY, 0xA11C + i as u64))
        .collect()
}

/// Spawn `readers` threads, each issuing `queries` round-robin pool
/// queries through `handle`, until done (fixed mode) or until `stop`
/// (churn mode, `queries` as a cap). Returns all recorded responses.
fn hammer(
    handle: &ServeHandle,
    pool: &Arc<Vec<Vec<(usize, usize)>>>,
    readers: usize,
    queries: usize,
    stop: Option<&Arc<AtomicBool>>,
) -> Vec<Response> {
    let mut threads = Vec::new();
    for r in 0..readers {
        let handle = handle.clone();
        let pool = Arc::clone(pool);
        let stop = stop.map(Arc::clone);
        threads.push(std::thread::spawn(move || {
            let mut out = Vec::with_capacity(queries.min(4096));
            for q in 0..queries {
                if let Some(stop) = &stop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                let set = (q * readers + r) % pool.len();
                let t0 = Instant::now();
                let resp = handle.resistances(&pool[set]).expect("resistance query");
                out.push(Response {
                    set,
                    version: resp.version,
                    values: resp.value,
                    latency_s: t0.elapsed().as_secs_f64(),
                });
            }
            out
        }));
    }
    threads
        .into_iter()
        .flat_map(|t| t.join().expect("reader panicked"))
        .collect()
}

/// Latency percentiles (seconds) of a response set.
fn latencies(responses: &[Response]) -> (f64, f64, f64) {
    let mut lat: Vec<f64> = responses.iter().map(|r| r.latency_s).collect();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (
        percentile(&lat, 0.50),
        percentile(&lat, 0.99),
        lat.last().copied().unwrap_or(0.0),
    )
}

fn json_keys(text: &str) -> Vec<String> {
    let mut keys = std::collections::BTreeSet::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            if let Some(end) = text[i + 1..].find('"') {
                let key = &text[i + 1..i + 1 + end];
                let rest = text[i + 1 + end + 1..].trim_start();
                if rest.starts_with(':') {
                    keys.insert(key.to_string());
                }
                i += end + 2;
                continue;
            }
        }
        i += 1;
    }
    keys.into_iter().collect()
}

/// Outcome of the overload/chaos arm, for the report and JSON.
struct OverloadOutcome {
    waves: usize,
    clients_per_wave: usize,
    requests: u64,
    ok: u64,
    shed: u64,
    chaos_requests: u64,
    chaos_clean: u64,
    versions_observed: usize,
    writer_restarts: u64,
    injected_faults: usize,
    max_queue_depth: u64,
    queue_capacity: usize,
    p50_ms: f64,
    p99_ms: f64,
    deadline_ms: u64,
}

/// One seeded adversarial client: picks a misbehavior and checks the
/// server's reaction is clean. Clean means the specific 4xx the junk
/// deserves, a `429` shed (these clients race a deliberate overload
/// burst), or a torn-down connection — never a hang and never a 5xx.
/// Returns whether the reaction was clean.
fn chaos_client(addr: std::net::SocketAddr, rng: &mut Rng) -> bool {
    use std::io::Write as _;
    // A connection-level error is the server ripping the junk down —
    // acceptable under load; an answered status must be the expected
    // rejection or a shed.
    let clean = |expected: u16| {
        move |r: Result<client::HttpReply, String>| match r {
            Ok(reply) => reply.status == expected || reply.status == 429,
            Err(_) => true,
        }
    };
    match rng.next_u64() % 5 {
        // Malformed verb -> 400.
        0 => clean(400)(client::raw(addr, b"BREW /coffee HTTP/1.1\r\n\r\n")),
        // Absurd Content-Length -> refused up front with 413.
        1 => clean(413)(client::raw(
            addr,
            b"POST /resistances HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n",
        )),
        // Binary junk -> 400.
        2 => clean(400)(client::raw(addr, b"\x00\x01\x02\x7f\r\n\r\n")),
        // Half-open connection: connect and vanish; clean means the
        // connect itself worked (the server copes silently).
        3 => std::net::TcpStream::connect(addr).is_ok(),
        // Mid-request disconnect: half a request, then vanish.
        _ => match std::net::TcpStream::connect(addr) {
            Ok(mut s) => {
                let _ = s.write_all(b"POST /resistances HTTP/1.1\r\ncontent-len");
                true
            }
            Err(_) => false,
        },
    }
}

/// The overload/chaos arm: a [`NetServer`] over a fresh small model
/// takes `waves` bursts of `burst` concurrent queries (plus seeded
/// chaos clients), with an HTTP ingest + flush between waves — one
/// ingest killing the writer through the fault plan. Each wave's `200`s
/// must bit-match the snapshot pinned for that wave.
fn overload_arm(full: bool, chaos_seed: u64) -> OverloadOutcome {
    let (side, waves, burst, chaos_per_wave, workers) = if full {
        (16, 4, 64, 8, 4)
    } else {
        (10, 3, 32, 5, 2)
    };
    let m = 12usize;
    let initial = 8usize;
    let queue_capacity = 8usize;
    let deadline_ms = 2_000u64;

    let truth = sgl_datasets::grid2d(side, side);
    let n = truth.num_nodes();
    let all = Measurements::generate(&truth, m, 7).expect("measurements");
    let column_batch = |lo: usize, hi: usize| {
        let cols: Vec<Vec<f64>> = (lo..hi).map(|j| all.voltages().column(j)).collect();
        Measurements::from_voltages(DenseMatrix::from_columns(&cols)).expect("batch")
    };
    let config = SglConfig::default().with_tol(0.0).with_max_iterations(4);
    let mut session = SglSession::from_owned(config, column_batch(0, initial)).expect("session");
    session.run_to_completion().expect("overload-arm learn");

    // The writer dies once, on the second ingest opportunity; the
    // supervisor must restart it and re-absorb without losing columns.
    let plan = Arc::new(FaultPlan::new().with_fault(FaultKind::WriterPanic, 1));
    let serve_opts = ServeOptions {
        // A slow collection window makes each admitted query occupy its
        // worker long enough for the burst to pile into the queue.
        batch_window: Duration::from_millis(5),
        fault_plan: Some(Arc::clone(&plan)),
        ..ServeOptions::default()
    };
    let server = SglServer::new(session, serve_opts).expect("overload server");
    let net_opts = NetOptions {
        workers,
        queue_capacity,
        ..NetOptions::default()
    };
    let net = NetServer::bind(server, loopback(), net_opts).expect("bind net server");
    let addr = net.local_addr();
    let pinned = net.serve_handle();
    let pool = Arc::new(query_pool(n));

    let mut ok = 0u64;
    let mut shed = 0u64;
    let mut requests = 0u64;
    let mut chaos_requests = 0u64;
    let mut chaos_clean = 0u64;
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut versions = std::collections::BTreeSet::new();

    let per_batch = (m - initial).max(waves) / waves;
    for wave in 0..waves {
        // Pin this wave's snapshot: between waves the ingest driver is
        // quiescent, so every response in the wave must carry exactly
        // this version and bit-match its canonical answers.
        let snap = pinned.snapshot();
        versions.insert(snap.version());
        let canonical: Vec<Vec<f64>> = pool
            .iter()
            .map(|pairs| snap.resistances(pairs).expect("canonical answers"))
            .collect();

        let barrier = Arc::new(std::sync::Barrier::new(burst + chaos_per_wave));
        let mut threads = Vec::new();
        for i in 0..burst {
            let barrier = Arc::clone(&barrier);
            let set = (wave * burst + i) % QUERY_POOL;
            let body = format!(
                "{{\"pairs\":{}}}",
                netjson::f64_matrix(
                    &pool[set]
                        .iter()
                        .map(|&(s, t)| vec![s as f64, t as f64])
                        .collect::<Vec<_>>()
                )
            );
            threads.push(std::thread::spawn(move || {
                barrier.wait();
                let t0 = Instant::now();
                let reply = client::post_with_headers(
                    addr,
                    "/resistances",
                    &[("x-sgl-deadline-ms", &deadline_ms.to_string())],
                    &body,
                );
                (set, reply, t0.elapsed().as_secs_f64() * 1e3)
            }));
        }
        let mut chaos_threads = Vec::new();
        for c in 0..chaos_per_wave {
            let barrier = Arc::clone(&barrier);
            let mut rng = Rng::seed_from_u64(chaos_seed ^ (wave as u64) << 8 ^ c as u64);
            chaos_threads.push(std::thread::spawn(move || {
                barrier.wait();
                chaos_client(addr, &mut rng)
            }));
        }

        for t in threads {
            let (set, reply, ms) = t.join().expect("burst client panicked");
            let reply = reply.expect("burst client got no reply at all");
            requests += 1;
            match reply.status {
                200 => {
                    ok += 1;
                    latencies_ms.push(ms);
                    let parsed = reply.json().expect("200 body parses");
                    let version = parsed
                        .get("version")
                        .and_then(|v| v.as_usize())
                        .expect("version tag") as u64;
                    assert_eq!(
                        version,
                        snap.version(),
                        "cross-version response inside a quiescent wave"
                    );
                    let values: Vec<f64> = parsed
                        .get("resistances")
                        .and_then(|v| v.as_array())
                        .expect("resistances array")
                        .iter()
                        .map(|x| x.as_f64().expect("numeric resistance"))
                        .collect();
                    assert_eq!(
                        values, canonical[set],
                        "torn response: wave {wave} answer drifted from its pinned snapshot"
                    );
                }
                429 => {
                    shed += 1;
                    assert!(
                        reply.header("retry-after").is_some(),
                        "shed response missing Retry-After"
                    );
                }
                other => panic!("overload burst got unexpected status {other}"),
            }
        }
        for t in chaos_threads {
            chaos_requests += 1;
            if t.join().expect("chaos client panicked") {
                chaos_clean += 1;
            }
        }

        // Quiescent ingest over the wire; wave 1's batch trips the
        // injected writer panic.
        let lo = initial + wave * per_batch;
        let hi = if wave + 1 == waves {
            m
        } else {
            (lo + per_batch).min(m)
        };
        if lo < hi {
            let batch = column_batch(lo, hi);
            let cols: Vec<Vec<f64>> = (0..batch.num_measurements())
                .map(|j| batch.voltages().column(j))
                .collect();
            let body = format!("{{\"columns\":{}}}", netjson::f64_matrix(&cols));
            let reply = client::post(addr, "/ingest", &body).expect("ingest reply");
            assert_eq!(reply.status, 202, "quiescent ingest must be accepted");
            let reply = client::post(addr, "/flush", "").expect("flush reply");
            assert_eq!(reply.status, 200, "flush must succeed (writer restarted)");
        }
    }

    assert!(ok > 0, "overload arm admitted nothing");
    assert!(
        shed > 0,
        "a {burst}-client burst over {queue_capacity} queue slots must shed"
    );
    assert_eq!(
        chaos_clean, chaos_requests,
        "an adversarial client got a non-clean reaction"
    );
    assert_eq!(plan.injected_count(), 1, "the writer kill never fired");
    let serve = net.serve_stats();
    assert_eq!(
        serve.writer_restarts, 1,
        "the killed writer must restart once"
    );
    let stats = net.stats();
    assert!(
        stats.max_queue_depth <= queue_capacity as u64,
        "queue depth {} exceeded the watermark",
        stats.max_queue_depth
    );
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50_ms = percentile(&latencies_ms, 0.50);
    let p99_ms = percentile(&latencies_ms, 0.99);
    assert!(
        p99_ms < deadline_ms as f64,
        "admitted p99 {p99_ms:.1} ms blew the {deadline_ms} ms deadline"
    );
    let session = net.shutdown().expect("net shutdown");
    assert_eq!(
        session.measurements().num_measurements(),
        m,
        "drain lost ingested columns"
    );

    OverloadOutcome {
        waves,
        clients_per_wave: burst,
        requests,
        ok,
        shed,
        chaos_requests,
        chaos_clean,
        versions_observed: versions.len(),
        writer_restarts: serve.writer_restarts,
        injected_faults: plan.injected_count(),
        max_queue_depth: stats.max_queue_depth,
        queue_capacity,
        p50_ms,
        p99_ms,
        deadline_ms,
    }
}

fn main() {
    let args = Args::from_env();
    let quick = args.has("quick");
    let side: usize = args.get("side", if quick { 20 } else { 40 });
    let m: usize = args.get("m", if quick { 12 } else { 20 });
    let queries: usize = args.get("queries", if quick { 40 } else { 120 });
    let window_us: u64 = args.get("window-us", 200);
    let max_readers: usize = args.get("readers", if quick { 2 } else { 4 });
    // Reader threads are OS threads hammering a lock-free snapshot, so
    // oversubscription is allowed — but record the host's real
    // parallelism so the tracked latency numbers are interpretable.
    let effective_threads = max_readers.min(par::max_threads());
    if max_readers > par::max_threads() {
        sgl_trace::warn!(
            "{max_readers} reader threads requested but the host has only {} cores; \
             reader arms will oversubscribe (effective_threads = {effective_threads})",
            par::max_threads()
        );
    }
    let reader_counts: Vec<usize> = {
        let mut counts = vec![1];
        let mut c = 2;
        while c <= max_readers {
            counts.push(c);
            c *= 2;
        }
        counts
    };

    let truth = sgl_datasets::grid2d(side, side);
    let n = truth.num_nodes();
    banner(
        "BENCH serve",
        "lock-free snapshot serving: reader throughput, ingest churn, revision cadence",
        &[
            ("nodes", n.to_string()),
            ("M", m.to_string()),
            ("queries/reader", queries.to_string()),
            ("reader_counts", format!("{reader_counts:?}")),
            ("pairs/query", PAIRS_PER_QUERY.to_string()),
            ("window_us", window_us.to_string()),
            ("effective_threads", effective_threads.to_string()),
            ("host_cores", par::max_threads().to_string()),
        ],
    );

    // Learn the initial model from ~60% of the measurement columns,
    // under-fitted (small iteration cap) so the streamed remainder keeps
    // adding edges — the regime the incremental revisions target.
    let all = Measurements::generate(&truth, m, 7).expect("measurements");
    let column_batch = |lo: usize, hi: usize| {
        let cols: Vec<Vec<f64>> = (lo..hi).map(|j| all.voltages().column(j)).collect();
        Measurements::from_voltages(DenseMatrix::from_columns(&cols)).expect("batch")
    };
    let initial_cols = (m * 3) / 5;
    let config = SglConfig::default().with_tol(0.0).with_max_iterations(6);
    let mut session =
        SglSession::from_owned(config, column_batch(0, initial_cols)).expect("session");
    session.run_to_completion().expect("initial learn");

    // `--trace PATH` records the serving timeline — query / batch_solve /
    // respond spans, queue-wait intervals, ingest / publish events — and
    // exports it as a Chrome trace at exit. Enabled only for the serving
    // phase so the learn preamble does not drown the timeline.
    let trace_path = {
        let flag = args.get("trace", String::new());
        (!flag.is_empty()).then(|| std::path::PathBuf::from(flag))
    };
    if trace_path.is_some() {
        sgl_trace::clear();
        sgl_trace::enable();
    }

    let opts = ServeOptions {
        batch_window: Duration::from_micros(window_us),
        ..ServeOptions::default()
    };
    let server = SglServer::new(session, opts).expect("server");
    let reader = server.handle();
    let pool = Arc::new(query_pool(n));

    // ---- Arm 1: fixed snapshot, scaling reader counts -------------------
    let v0 = reader.snapshot();
    assert_eq!(v0.version(), 0);
    let canonical_v0: Vec<Vec<f64>> = pool
        .iter()
        .map(|pairs| v0.resistances(pairs).expect("canonical answers"))
        .collect();

    let mut table = Table::new(&["readers", "queries", "qps", "p50_ms", "p99_ms", "wall_s"]);
    let mut fixed_rows = Vec::new();
    for &readers in &reader_counts {
        let (responses, wall_s) = time(|| hammer(&reader, &pool, readers, queries, None));
        for resp in &responses {
            assert_eq!(resp.version, 0, "fixed-snapshot query left version 0");
            assert_eq!(
                resp.values, canonical_v0[resp.set],
                "response drifted from canonical at {} readers",
                readers
            );
        }
        let (p50, p99, _max) = latencies(&responses);
        let qps = responses.len() as f64 / wall_s;
        table.row(&[
            readers.to_string(),
            responses.len().to_string(),
            fix(qps, 1),
            fix(p50 * 1e3, 3),
            fix(p99 * 1e3, 3),
            fix(wall_s, 3),
        ]);
        fixed_rows.push((readers, responses.len(), qps, p50, p99, wall_s));
    }
    println!("\nfixed snapshot (v0), bit-identical at every reader count ✓");
    table.print();

    // ---- Arm 2: readers hammer through ingest + publishes ---------------
    // Canonical answers are captured per published version from pinned
    // snapshots; every concurrent response must match the canonical set
    // of exactly the version that answered it.
    let churn_readers = *reader_counts.last().expect("non-empty");
    let ingest_batches = 3usize;
    let stop = Arc::new(AtomicBool::new(false));
    let churn_handle = reader.clone();
    let churn_pool = Arc::clone(&pool);
    let churn_stop = Arc::clone(&stop);
    let churn = std::thread::spawn(move || {
        hammer(
            &churn_handle,
            &churn_pool,
            churn_readers,
            usize::MAX / 2,
            Some(&churn_stop),
        )
    });

    let mut canonical: Vec<Vec<Vec<f64>>> = vec![canonical_v0];
    let cols_left = m - initial_cols;
    let per_batch = cols_left / ingest_batches;
    let (_, churn_wall) = time(|| {
        for b in 0..ingest_batches {
            let lo = initial_cols + b * per_batch;
            let hi = if b + 1 == ingest_batches {
                m
            } else {
                lo + per_batch
            };
            server.ingest(column_batch(lo, hi)).expect("ingest");
            server.flush().expect("flush");
            let snap = reader.snapshot();
            canonical.push(
                pool.iter()
                    .map(|pairs| snap.resistances(pairs).expect("canonical answers"))
                    .collect(),
            );
        }
    });
    stop.store(true, Ordering::Relaxed);
    let churn_responses = churn.join().expect("churn readers panicked");

    let mut versions_observed = std::collections::BTreeSet::new();
    for resp in &churn_responses {
        let v = resp.version as usize;
        assert!(v < canonical.len(), "response from unpublished version {v}");
        versions_observed.insert(resp.version);
        assert_eq!(
            resp.values, canonical[v][resp.set],
            "torn read: response does not match canonical answers of version {v}"
        );
    }
    let (churn_p50, churn_p99, churn_max) = latencies(&churn_responses);
    let stats = server.stats();
    assert_eq!(stats.snapshots_published as usize, ingest_batches);
    println!(
        "\ningest churn: {} responses across versions {:?} while publishing {} snapshots, \
         every response consistent with exactly one snapshot ✓",
        churn_responses.len(),
        versions_observed,
        stats.snapshots_published,
    );
    println!(
        "  latency p50 {:.3} ms, p99 {:.3} ms, max {:.3} ms over {:.3} s of ingest",
        churn_p50 * 1e3,
        churn_p99 * 1e3,
        churn_max * 1e3,
        churn_wall,
    );

    // ---- Arm 3: revision cadence on the default policy ------------------
    let final_snap = reader.snapshot();
    let rev = final_snap.revision_stats();
    let publishes = stats.snapshots_published as usize;
    assert!(
        rev.delta_updates >= 1,
        "default-policy republish cadence never took the delta-update path: {rev:?}"
    );
    assert!(
        rev.handles_built < publishes + 1,
        "every publish refactorized ({} builds for {} publishes): {rev:?}",
        rev.handles_built,
        publishes
    );
    println!(
        "\nrevisions: {} publishes rode {} delta updates (rank {}) on {} full builds ✓",
        publishes, rev.delta_updates, rev.delta_rank_applied, rev.handles_built
    );

    // Server-side latency: measured inside the micro-batcher for every
    // query (including the collection window and queue wait), the
    // authoritative numbers — the bench-side per-arm percentiles above
    // only see the client clock and miss abandoned requests.
    println!(
        "server-side latency: p50 {:.3} ms, p99 {:.3} ms; queue wait p50 {:.3} ms, \
         p99 {:.3} ms over {} queries",
        stats.query_latency_p50_ms,
        stats.query_latency_p99_ms,
        stats.queue_wait_p50_ms,
        stats.queue_wait_p99_ms,
        stats.queries_answered,
    );
    assert!(
        stats.query_latency_p99_ms > 0.0,
        "server-side latency histogram recorded nothing"
    );

    // ---- Arm 4: network front-end under overload + chaos ----------------
    let full_net = args.has("net");
    let chaos_seed: u64 = args.get("chaos-seed", 0xC4A0_5EED);
    let (overload, overload_wall) = time(|| overload_arm(full_net, chaos_seed));
    println!(
        "\noverload ({} soak, chaos seed {chaos_seed:#x}): {} requests over {} waves \
         of {} clients -> {} ok / {} shed, {} chaos clients all handled cleanly, \
         writer killed+restarted {}x, queue depth <= {}, \
         p50 {:.3} ms / p99 {:.3} ms (deadline {} ms), zero torn responses ✓ [{:.2}s]",
        if full_net { "full" } else { "quick" },
        overload.requests,
        overload.waves,
        overload.clients_per_wave,
        overload.ok,
        overload.shed,
        overload.chaos_requests,
        overload.writer_restarts,
        overload.max_queue_depth,
        overload.p50_ms,
        overload.p99_ms,
        overload.deadline_ms,
        overload_wall,
    );

    if let Some(path) = &trace_path {
        sgl_trace::disable();
        let events = sgl_trace::take_events();
        sgl_trace::write_chrome_trace(path, &events).expect("write chrome trace");
        println!("wrote {} ({} events)", path.display(), events.len());
    }

    // Hand-rolled JSON (no serde in the offline image).
    let mut json = String::from("{\n  \"bench\": \"serve\",\n");
    json.push_str(&format!("  \"host_cores\": {},\n", par::max_threads()));
    json.push_str(&format!("  \"effective_threads\": {effective_threads},\n"));
    json.push_str(&format!(
        "  \"args\": \"side={side} m={m} queries={queries} readers={max_readers} \
         window_us={window_us} quick={quick}\",\n"
    ));
    json.push_str(&format!("  \"nodes\": {n},\n"));
    json.push_str(&format!("  \"pairs_per_query\": {PAIRS_PER_QUERY},\n"));
    json.push_str("  \"fixed_snapshot\": [\n");
    for (i, (readers, count, qps, p50, p99, wall_s)) in fixed_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"readers\": {}, \"queries\": {}, \"qps\": {:.3}, \
             \"p50_ms\": {:.6}, \"p99_ms\": {:.6}, \"wall_s\": {:.9}, \
             \"version\": 0, \"bit_identical\": true}}{}\n",
            readers,
            count,
            qps,
            p50 * 1e3,
            p99 * 1e3,
            wall_s,
            if i + 1 < fixed_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"ingest_churn\": {{\"readers\": {}, \"responses\": {}, \
         \"versions_observed\": {}, \"snapshots_published\": {}, \
         \"measurements_ingested\": {}, \"churn_wall_s\": {:.9}, \
         \"p50_ms\": {:.6}, \"p99_ms\": {:.6}, \"max_ms\": {:.6}, \
         \"consistent\": true}},\n",
        churn_readers,
        churn_responses.len(),
        versions_observed.len(),
        stats.snapshots_published,
        stats.measurements_ingested,
        churn_wall,
        churn_p50 * 1e3,
        churn_p99 * 1e3,
        churn_max * 1e3,
    ));
    json.push_str(&format!(
        "  \"revision\": {{\"publishes\": {}, \"handles_built\": {}, \
         \"delta_updates\": {}, \"delta_rank_applied\": {}, \
         \"refreshes_forced\": {}, \"delta_path_on_default_arm\": true}},\n",
        publishes,
        rev.handles_built,
        rev.delta_updates,
        rev.delta_rank_applied,
        rev.refreshes_on_rank + rev.refreshes_on_iters + rev.refreshes_on_numeric,
    ));
    json.push_str(&format!(
        "  \"server_latency\": {{\"query_p50_ms\": {:.6}, \"query_p99_ms\": {:.6}, \
         \"queue_wait_p50_ms\": {:.6}, \"queue_wait_p99_ms\": {:.6}, \
         \"measured\": \"in-server\"}},\n",
        stats.query_latency_p50_ms,
        stats.query_latency_p99_ms,
        stats.queue_wait_p50_ms,
        stats.queue_wait_p99_ms,
    ));
    json.push_str(&format!(
        "  \"overload\": {{\"full_soak\": {}, \"chaos_seed\": {}, \"waves\": {}, \
         \"clients_per_wave\": {}, \"requests\": {}, \"ok\": {}, \"shed\": {}, \
         \"chaos_requests\": {}, \"chaos_clean\": {}, \"versions_observed\": {}, \
         \"writer_restarts\": {}, \"injected_faults\": {}, \"max_queue_depth\": {}, \
         \"queue_capacity\": {}, \"overload_p50_ms\": {:.6}, \"overload_p99_ms\": {:.6}, \
         \"deadline_ms\": {}, \"p99_within_deadline\": true, \"torn_responses\": 0, \
         \"shed_not_crash\": true}},\n",
        full_net,
        chaos_seed,
        overload.waves,
        overload.clients_per_wave,
        overload.requests,
        overload.ok,
        overload.shed,
        overload.chaos_requests,
        overload.chaos_clean,
        overload.versions_observed,
        overload.writer_restarts,
        overload.injected_faults,
        overload.max_queue_depth,
        overload.queue_capacity,
        overload.p50_ms,
        overload.p99_ms,
        overload.deadline_ms,
    ));
    json.push_str(&format!(
        "  \"serve_stats\": {{\"queries_answered\": {}, \"batches_executed\": {}, \
         \"requests_coalesced\": {}, \"rhs_columns_solved\": {}, \
         \"largest_batch\": {}}}\n}}\n",
        stats.queries_answered,
        stats.batches_executed,
        stats.requests_coalesced,
        stats.rhs_columns_solved,
        stats.largest_batch,
    ));

    let path = repro_dir().join("BENCH_serve.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_serve.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_serve.json");
    println!("\nwrote {}", path.display());

    // Schema drift check against the tracked snapshot (CI smoke mode).
    if let Some(tracked) = {
        let flag = args.get("schema-against", String::new());
        (!flag.is_empty()).then_some(flag)
    } {
        let snapshot = std::fs::read_to_string(&tracked)
            .unwrap_or_else(|e| panic!("cannot read tracked snapshot {tracked}: {e}"));
        let expect = json_keys(&snapshot);
        let got = json_keys(&json);
        assert_eq!(
            got, expect,
            "BENCH_serve.json schema drifted from the tracked snapshot {tracked}; \
             regenerate and commit it alongside the change"
        );
        println!("schema matches tracked snapshot {tracked} ✓");
    }
}
