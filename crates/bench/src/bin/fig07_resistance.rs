//! Figure 7: effective-resistance correlation scatter plots — exact
//! pairwise resistances on the original graph vs the SGL-learned graph
//! for "2D mesh", "airfoil", "fe_4elt2" and "crack".
//!
//! The paper reports highly correlated scatters for all four cases.
//!
//! Pass `--refine` to additionally report the correlation after the
//! (beyond-paper) sketch-based edge-weight refinement pass.
//!
//! Usage: `fig07_resistance [--scale 0.15] [--m 100] [--pairs 300] [--refine] [--quick]`

use sgl_bench::{banner, fix, Args, Table};
use sgl_core::{
    pairwise_effective_resistances, refine_weights, sample_node_pairs, spectral_edge_scaling,
    Measurements, RefineOptions, Sgl, SglConfig,
};
use sgl_datasets::TestCase;
use sgl_linalg::vecops::pearson;

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", if args.has("quick") { 0.03 } else { 0.15 });
    let m: usize = args.get("m", 100);
    let num_pairs: usize = args.get("pairs", 300);
    banner(
        "Figure 7",
        "effective-resistance correlations (original vs learned)",
        &[
            ("scale", scale.to_string()),
            ("M", m.to_string()),
            ("pairs", num_pairs.to_string()),
        ],
    );

    let cases = [
        TestCase::Mesh2d,
        TestCase::Airfoil,
        TestCase::Fe4elt2,
        TestCase::Crack,
    ];
    let refine = args.has("refine");
    let mut headers = vec!["case", "|V|", "density_learned", "corr_coef"];
    if refine {
        headers.push("corr_refined");
    }
    let mut summary = Table::new(&headers);
    for case in cases {
        let truth = case.generate_scaled(scale, 11);
        let meas = Measurements::generate(&truth, m, 7).expect("measurements");
        let result = Sgl::new(
            SglConfig::default()
                .with_tol(1e-12)
                .with_max_iterations(200),
        )
        .learn(&meas)
        .expect("learning");
        let pairs = sample_node_pairs(truth.num_nodes(), num_pairs, 13);
        let orig = pairwise_effective_resistances(&truth, &pairs).expect("original ER");
        let learned = pairwise_effective_resistances(&result.graph, &pairs).expect("learned ER");
        let corr = pearson(&orig, &learned);

        // Scatter CSV per case.
        let mut scatter = Table::new(&["r_original", "r_learned"]);
        for (a, b) in orig.iter().zip(&learned) {
            scatter.row(&[format!("{a:.8e}"), format!("{b:.8e}")]);
        }
        let tag = case.name().replace(' ', "_");
        let csv = scatter
            .write_csv(&format!("fig07_resistance_{tag}"))
            .expect("csv");
        println!("{case}: corr = {corr:.4}  scatter -> {}", csv.display());

        let mut row = vec![
            case.name().to_string(),
            truth.num_nodes().to_string(),
            fix(result.density(), 3),
            fix(corr, 4),
        ];
        if refine {
            let mut refined = result.graph.clone();
            refine_weights(&mut refined, &meas, &RefineOptions::default()).expect("refine");
            spectral_edge_scaling(&mut refined, &meas).expect("rescale");
            let r_ref = pairwise_effective_resistances(&refined, &pairs).expect("refined ER");
            row.push(fix(pearson(&orig, &r_ref), 4));
        }
        summary.row(&row);
    }
    println!();
    summary.print();
    let _ = summary.write_csv("fig07_summary");
    println!();
    println!("paper: scatters hug the diagonal for all four cases");
}
