//! Figure 5: learning the "crack" graph (|V| = 10,240, |E| = 30,380) —
//! objective curve, spectral drawings, density 2.97 → ~1.03, eigenvalue
//! scatter from 100 noiseless measurements.
//!
//! Usage: `fig05_crack [--scale 0.25] [--m 100] [--eigs 30] [--quick]`

use sgl_bench::{case_report, Args};
use sgl_datasets::TestCase;

fn main() {
    let args = Args::from_env();
    case_report("Figure 5", TestCase::Crack, &args, 0.25);
}
