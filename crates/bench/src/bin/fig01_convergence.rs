//! Figure 1: decreasing maximum sensitivities on the "2D mesh" graph.
//!
//! The paper shows `log s_max` falling from ~10⁻² to 10⁻¹² over ~40
//! iterations when learning a 10,000-node 2-D mesh from 50 measurements,
//! starting from the MST of a 5NN graph.
//!
//! Usage: `fig01_convergence [--scale 1.0] [--m 50] [--tol 1e-12] [--quick]`

use sgl_bench::{banner, fix, sci, Args, Table};
use sgl_core::{Measurements, Sgl, SglConfig};
use sgl_datasets::grid2d;

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", if args.has("quick") { 0.04 } else { 1.0 });
    let m: usize = args.get("m", 50);
    let tol: f64 = args.get("tol", 1e-12);
    let side = ((10_000.0 * scale).sqrt().round() as usize).max(8);
    let truth = grid2d(side, side);
    banner(
        "Figure 1",
        "convergence of max edge sensitivity (2D mesh)",
        &[
            ("|V|", truth.num_nodes().to_string()),
            ("|E|", truth.num_edges().to_string()),
            ("M", m.to_string()),
            ("tol", format!("{tol:.0e}")),
        ],
    );

    let meas = Measurements::generate(&truth, m, 42).expect("measurement generation");
    let config = SglConfig::default().with_tol(tol).with_max_iterations(300);
    let result = Sgl::new(config).learn(&meas).expect("learning");

    let mut table = Table::new(&["iteration", "smax", "log10_smax", "edges_added", "density"]);
    for rec in &result.trace {
        table.row(&[
            rec.iteration.to_string(),
            sci(rec.smax),
            fix(rec.smax.abs().max(1e-300).log10(), 3),
            rec.edges_added.to_string(),
            fix(rec.total_edges as f64 / truth.num_nodes() as f64, 4),
        ]);
    }
    table.print();
    let csv = table.write_csv("fig01_convergence").expect("csv");
    println!();
    println!(
        "converged: {} after {} iterations (paper: ~40 iterations to 1e-12)",
        result.converged,
        result.trace.len()
    );
    println!(
        "learned density: {:.3} (paper learns near-tree densities)",
        result.density()
    );
    println!("series written to {}", csv.display());
}
