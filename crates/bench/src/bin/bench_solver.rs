//! Offline solver-layer benchmark: `solve_batch` vs sequential `solve`
//! across backends, plus handle-setup cost — emitted as
//! `target/repro/BENCH_solver.json` for CI trend tracking.
//!
//! Usage: `bench_solver [--side 32] [--m 32] [--reps 5] [--quick]`

use sgl_bench::{banner, repro_dir, Args, Table};
use sgl_linalg::{vecops, Rng};
use sgl_solver::{PolicyMethod, SolverPolicy};
use std::io::Write;
use std::time::Instant;

fn rhs_batch(n: usize, m: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            let mut b = rng.normal_vec(n);
            vecops::project_out_mean(&mut b);
            b
        })
        .collect()
}

/// Best-of-`reps` wall-clock seconds.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct Row {
    method: PolicyMethod,
    nodes: usize,
    rhs: usize,
    setup_s: f64,
    batch_s: f64,
    sequential_s: f64,
}

fn main() {
    let args = Args::from_env();
    let side: usize = args.get("side", if args.has("quick") { 16 } else { 32 });
    let m: usize = args.get("m", 32);
    let reps: usize = args.get("reps", 5);
    banner(
        "BENCH solver",
        "solve_batch vs sequential solve per backend",
        &[
            ("side", side.to_string()),
            ("M", m.to_string()),
            ("reps", reps.to_string()),
        ],
    );

    let g = sgl_datasets::grid2d(side, side);
    let n = g.num_nodes();
    let rhs = rhs_batch(n, m, 5);
    let mut rows = Vec::new();
    for method in [
        PolicyMethod::Auto,
        PolicyMethod::TreePcg,
        PolicyMethod::AmgPcg,
        PolicyMethod::JacobiPcg,
        PolicyMethod::IcholPcg,
        PolicyMethod::DenseCholesky,
    ] {
        let policy = SolverPolicy {
            dense_max_nodes: 0,
            ..SolverPolicy::default().with_method(method)
        };
        let setup_s = best_of(reps, || {
            policy.build_handle(&g).unwrap();
        });
        let handle = policy.build_handle(&g).unwrap();
        let batch_s = best_of(reps, || {
            handle.solve_batch(&rhs).unwrap();
        });
        let sequential_s = best_of(reps, || {
            for b in &rhs {
                handle.solve(b).unwrap();
            }
        });
        rows.push(Row {
            method,
            nodes: n,
            rhs: m,
            setup_s,
            batch_s,
            sequential_s,
        });
    }

    let mut table = Table::new(&["method", "N", "M", "setup_s", "batch_s", "sequential_s"]);
    for r in &rows {
        table.row(&[
            format!("{:?}", r.method),
            r.nodes.to_string(),
            r.rhs.to_string(),
            format!("{:.6}", r.setup_s),
            format!("{:.6}", r.batch_s),
            format!("{:.6}", r.sequential_s),
        ]);
    }
    table.print();

    // Hand-rolled JSON (no serde in the offline image).
    let mut json = String::from("{\n  \"bench\": \"solver\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"method\": \"{:?}\", \"nodes\": {}, \"rhs\": {}, \
             \"setup_s\": {:.9}, \"batch_s\": {:.9}, \"sequential_s\": {:.9}}}{}\n",
            r.method,
            r.nodes,
            r.rhs,
            r.setup_s,
            r.batch_s,
            r.sequential_s,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = repro_dir().join("BENCH_solver.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_solver.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_solver.json");
    println!("\nwrote {}", path.display());
}
