//! Figure 9: learning the "2D mesh" graph from noisy voltage
//! measurements, `x̃ = x + ζ ‖x‖ ε̂` for ζ ∈ {0, 0.1, 0.25, 0.5}.
//!
//! Paper result: approximation degrades gracefully with noise; even at
//! ζ = 0.5 the first Laplacian eigenvalues are still preserved.
//!
//! Usage: `fig09_noise [--scale 0.25] [--m 50] [--eigs 25] [--quick]`

use sgl_bench::{banner, fix, sci, Args, Table};
use sgl_core::{smallest_nonzero_eigenvalues, Measurements, Sgl, SglConfig, SpectrumMethod};
use sgl_datasets::grid2d;
use sgl_linalg::vecops::pearson;

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", if args.has("quick") { 0.04 } else { 0.25 });
    let m: usize = args.get("m", 50);
    let k_eigs: usize = args.get("eigs", 25);
    let side = ((10_000.0 * scale).sqrt().round() as usize).max(8);
    let truth = grid2d(side, side);
    banner(
        "Figure 9",
        "graphs learned with noisy measurements (2D mesh)",
        &[
            ("|V|", truth.num_nodes().to_string()),
            ("M", m.to_string()),
            ("eigs", k_eigs.to_string()),
        ],
    );

    let clean = Measurements::generate(&truth, m, 7).expect("measurements");
    let method = SpectrumMethod::ShiftInvert;
    let true_eigs = smallest_nonzero_eigenvalues(&truth, k_eigs, method).expect("true eigenvalues");
    let config = SglConfig::default()
        .with_tol(1e-12)
        .with_max_iterations(200);

    let mut summary = Table::new(&["noise_pct", "density", "corr_coef", "mean_rel_err"]);
    for zeta in [0.0, 0.1, 0.25, 0.5] {
        let noisy = clean.with_noise(zeta, 99);
        let result = Sgl::new(config.clone()).learn(&noisy).expect("learning");
        let got = smallest_nonzero_eigenvalues(&result.graph, k_eigs, method)
            .expect("learned eigenvalues");
        let corr = pearson(&true_eigs, &got);
        let rel = true_eigs
            .iter()
            .zip(&got)
            .map(|(t, g)| (g - t).abs() / t)
            .sum::<f64>()
            / k_eigs as f64;
        let pct = (zeta * 100.0) as usize;
        let mut scatter = Table::new(&["lambda_original", "lambda_learned"]);
        for i in 0..k_eigs {
            scatter.row(&[sci(true_eigs[i]), sci(got[i])]);
        }
        let _ = scatter.write_csv(&format!("fig09_noise_{pct}pct"));
        summary.row(&[
            format!("{pct}%"),
            fix(result.density(), 3),
            fix(corr, 4),
            fix(rel, 4),
        ]);
    }
    summary.print();
    let csv = summary.write_csv("fig09_summary").expect("csv");
    println!();
    println!("paper: even 50% noise preserves the first few eigenvalues");
    println!("series written to {}", csv.display());
}
