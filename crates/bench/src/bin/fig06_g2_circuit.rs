//! Figure 6: learning the "G2_circuit" graph (|V| = 150,102,
//! |E| = 288,286) — objective curve and eigenvalue scatter from 100
//! noiseless measurements.
//!
//! The default scale is reduced (the brute-force kNN path is quadratic);
//! pass a larger `--scale` to approach the paper size.
//!
//! Usage: `fig06_g2_circuit [--scale 0.05] [--m 100] [--eigs 30] [--quick]`

use sgl_bench::{case_report, Args};
use sgl_datasets::TestCase;

fn main() {
    let args = Args::from_env();
    case_report("Figure 6", TestCase::G2Circuit, &args, 0.04);
}
