//! Figure 3: spectral comparison with the 5NN graph on "fe_4elt2" —
//! eigenvalue scatter (true vs approximated) and graph densities.
//!
//! Paper result: the SGL graph (density 1.09) tracks the true eigenvalues
//! closely; the 5NN graph (density 2.89) overshoots them badly.
//!
//! Usage: `fig03_knn_compare [--scale 0.3] [--m 50] [--eigs 30] [--quick]`

use sgl_baseline::knn_baseline;
use sgl_bench::{banner, sci, Args, Table};
use sgl_core::{smallest_nonzero_eigenvalues, Measurements, Sgl, SglConfig, SpectrumMethod};
use sgl_datasets::TestCase;
use sgl_linalg::vecops::pearson;

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", if args.has("quick") { 0.04 } else { 0.3 });
    let m: usize = args.get("m", 50);
    let k_eigs: usize = args.get("eigs", 30);
    let truth = TestCase::Fe4elt2.generate_scaled(scale, 11);
    banner(
        "Figure 3",
        "eigenvalue scatter: SGL vs 5NN (fe_4elt2)",
        &[
            ("|V|", truth.num_nodes().to_string()),
            ("|E|", truth.num_edges().to_string()),
            ("M", m.to_string()),
            ("eigs", k_eigs.to_string()),
        ],
    );

    let meas = Measurements::generate(&truth, m, 7).expect("measurements");
    let sgl = Sgl::new(
        SglConfig::default()
            .with_tol(1e-12)
            .with_max_iterations(200),
    )
    .learn(&meas)
    .expect("learning");
    let (knn, _) = knn_baseline(&meas, 5).expect("5NN baseline");

    let method = SpectrumMethod::ShiftInvert;
    let true_eigs = smallest_nonzero_eigenvalues(&truth, k_eigs, method).expect("true eigs");
    let sgl_eigs = smallest_nonzero_eigenvalues(&sgl.graph, k_eigs, method).expect("sgl eigs");
    let knn_eigs = smallest_nonzero_eigenvalues(&knn, k_eigs, method).expect("knn eigs");

    let mut table = Table::new(&["index", "lambda_true", "lambda_sgl", "lambda_5nn"]);
    for i in 0..k_eigs {
        table.row(&[
            (i + 2).to_string(),
            sci(true_eigs[i]),
            sci(sgl_eigs[i]),
            sci(knn_eigs[i]),
        ]);
    }
    table.print();
    let csv = table.write_csv("fig03_knn_compare").expect("csv");

    println!();
    println!(
        "correlation with true spectrum: SGL {:.4}, 5NN {:.4}",
        pearson(&true_eigs, &sgl_eigs),
        pearson(&true_eigs, &knn_eigs)
    );
    let rel = |a: &[f64], b: &[f64]| {
        a.iter().zip(b).map(|(x, y)| (y - x).abs() / x).sum::<f64>() / a.len() as f64
    };
    println!(
        "mean relative eigenvalue error: SGL {:.3}, 5NN {:.3}",
        rel(&true_eigs, &sgl_eigs),
        rel(&true_eigs, &knn_eigs)
    );
    println!(
        "densities: SGL {:.3} vs 5NN {:.3}  (paper: 1.09 vs 2.89)",
        sgl.density(),
        knn.density()
    );
    println!("series written to {}", csv.display());
}
