//! Figure 4: learning the "airfoil" graph (|V| = 4,253, |E| = 12,289) —
//! objective curve, spectral drawings, density 2.89 → ~1.04, eigenvalue
//! scatter from 100 noiseless measurements.
//!
//! Usage: `fig04_airfoil [--scale 0.25] [--m 100] [--eigs 30] [--quick]`

use sgl_bench::{case_report, Args};
use sgl_datasets::TestCase;

fn main() {
    let args = Args::from_env();
    case_report("Figure 4", TestCase::Airfoil, &args, 0.25);
}
