//! Figure 2: graphical-Lasso objective (eq. 2) vs SGL iteration on the
//! "fe_4elt2" graph, against the scaled 5NN baseline.
//!
//! The paper's SGL run converges in ~90 iterations and ends at a higher
//! objective value than the 5NN graph, at roughly a third of its density.
//!
//! Usage: `fig02_objective [--scale 0.3] [--m 50] [--stride 5] [--quick]`

use sgl_baseline::knn_baseline;
use sgl_bench::{banner, fix, Args, Table};
use sgl_core::{objective, Measurements, ObjectiveOptions, Sgl, SglConfig};
use sgl_datasets::TestCase;

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", if args.has("quick") { 0.04 } else { 0.3 });
    let m: usize = args.get("m", 50);
    let stride: usize = args.get("stride", 5);
    let truth = TestCase::Fe4elt2.generate_scaled(scale, 11);
    banner(
        "Figure 2",
        "objective value vs iteration, SGL vs 5NN (fe_4elt2)",
        &[
            ("|V|", truth.num_nodes().to_string()),
            ("|E|", truth.num_edges().to_string()),
            ("M", m.to_string()),
            ("stride", stride.to_string()),
        ],
    );

    let meas = Measurements::generate(&truth, m, 7).expect("measurements");
    let config = SglConfig::default()
        .with_tol(1e-12)
        .with_max_iterations(200);
    let result = Sgl::new(config).learn(&meas).expect("learning");
    let (knn_scaled, _) = knn_baseline(&meas, 5).expect("5NN baseline");

    // Protocol of Algorithm 1: densification runs on the kNN weights and
    // Step 5 rescales once at the end; the iteration curve therefore
    // tracks the *unscaled* iterates, and the endpoint comparison applies
    // the same edge scaling to both SGL and 5NN (as the paper does).
    let obj_opts = ObjectiveOptions::default();
    // result.knn_graph keeps the raw eq.-15 weights; knn_baseline has
    // already applied Step-5 scaling to its copy.
    let f_knn_unscaled = objective(&result.knn_graph, &meas, &obj_opts).expect("kNN objective");
    let f_knn_scaled = objective(&knn_scaled, &meas, &obj_opts).expect("kNN objective");

    let mut table = Table::new(&["iteration", "objective_sgl", "objective_5nn", "density_sgl"]);
    let last = result.trace.len() - 1;
    for (i, rec) in result.trace.iter().enumerate() {
        if i % stride != 0 && i != last {
            continue;
        }
        let snap = result.graph_at_iteration(i).expect("trace index in range");
        let f = objective(&snap, &meas, &obj_opts).expect("snapshot objective");
        table.row(&[
            rec.iteration.to_string(),
            fix(f.total, 3),
            fix(f_knn_unscaled.total, 3),
            fix(snap.num_edges() as f64 / truth.num_nodes() as f64, 4),
        ]);
    }
    table.print();
    let csv = table.write_csv("fig02_objective").expect("csv");

    let f_sgl_scaled = objective(&result.graph, &meas, &obj_opts).expect("final objective");
    let f_sgl_unscaled = objective(
        &result
            .graph_at_iteration(result.trace.len() - 1)
            .expect("trace index in range"),
        &meas,
        &obj_opts,
    )
    .expect("final objective");
    println!();
    println!(
        "unscaled endpoint: F_SGL = {:.3} vs F_5NN = {:.3}  (paper: SGL ends above 5NN)",
        f_sgl_unscaled.total, f_knn_unscaled.total
    );
    println!(
        "after Step-5 scaling of both: F_SGL = {:.3} vs F_5NN = {:.3}",
        f_sgl_scaled.total, f_knn_scaled.total
    );
    println!(
        "densities: SGL {:.3} vs 5NN {:.3}  (paper: 1.09 vs 2.89)",
        result.density(),
        knn_scaled.density()
    );
    println!("iterations: {} (paper: ~90)", result.trace.len());
    println!("series written to {}", csv.display());
}
