//! Figure 10: effect of the number of measurements on learning quality
//! ("fe_4elt2", M ∈ {5, 10, 25, 50}).
//!
//! Paper result: more samples → tighter eigenvalue scatter, consistent
//! with the O(log N) sample-complexity analysis of §II.D.
//!
//! Usage: `fig10_samples [--scale 0.15] [--eigs 25] [--quick]`

use sgl_bench::{banner, fix, sci, Args, Table};
use sgl_core::{smallest_nonzero_eigenvalues, Measurements, Sgl, SglConfig, SpectrumMethod};
use sgl_datasets::TestCase;
use sgl_linalg::vecops::pearson;

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", if args.has("quick") { 0.03 } else { 0.15 });
    let k_eigs: usize = args.get("eigs", 25);
    let truth = TestCase::Fe4elt2.generate_scaled(scale, 11);
    banner(
        "Figure 10",
        "effect of the number of measurements (fe_4elt2)",
        &[
            ("|V|", truth.num_nodes().to_string()),
            ("eigs", k_eigs.to_string()),
        ],
    );

    let method = SpectrumMethod::ShiftInvert;
    let true_eigs = smallest_nonzero_eigenvalues(&truth, k_eigs, method).expect("true eigenvalues");
    let config = SglConfig::default()
        .with_tol(1e-12)
        .with_max_iterations(200);

    let mut summary = Table::new(&["measurements", "density", "corr_coef", "mean_rel_err"]);
    for m in [5usize, 10, 25, 50] {
        let meas = Measurements::generate(&truth, m, 7).expect("measurements");
        let result = Sgl::new(config.clone()).learn(&meas).expect("learning");
        let got = smallest_nonzero_eigenvalues(&result.graph, k_eigs, method)
            .expect("learned eigenvalues");
        let corr = pearson(&true_eigs, &got);
        let rel = true_eigs
            .iter()
            .zip(&got)
            .map(|(t, g)| (g - t).abs() / t)
            .sum::<f64>()
            / k_eigs as f64;
        let mut scatter = Table::new(&["lambda_original", "lambda_learned"]);
        for i in 0..k_eigs {
            scatter.row(&[sci(true_eigs[i]), sci(got[i])]);
        }
        let _ = scatter.write_csv(&format!("fig10_samples_m{m}"));
        summary.row(&[
            m.to_string(),
            fix(result.density(), 3),
            fix(corr, 4),
            fix(rel, 4),
        ]);
    }
    summary.print();
    let csv = summary.write_csv("fig10_summary").expect("csv");
    println!();
    println!("paper: scatter tightens substantially from M = 5 to M = 50");
    println!("series written to {}", csv.display());
}
