//! End-to-end learning-loop benchmark across the parallel execution
//! layer: the full SGL pipeline (kNN build → densification loop → edge
//! scaling) on several scenarios, at 1 worker thread and at N, emitting
//! `target/repro/BENCH_learn.json` — the tracked perf trajectory for
//! every future scaling PR.
//!
//! Scenarios:
//! * `grid`     — 2-D mesh with simulated voltage/current measurements;
//! * `delaunay` — Delaunay triangulation of random points (mesh-like,
//!   irregular degrees);
//! * `knn-cloud` — a raw point cloud whose coordinates are the data
//!   matrix (GRASPEL-style attribute graph learning, voltage-only).
//!
//! Besides the timings the bench *asserts* the parallel determinism
//! contract: the graph learned at N threads must be identical (same
//! edges, bit-identical weights) to the 1-thread run.
//!
//! A final **multilevel** section compares `learn_multilevel` against
//! flat `Sgl::learn` on a convergence-driven grid run (≥ 50k nodes at
//! full size): hierarchy shape, wall-clock, total PCG iterations
//! (`SolverContext::cumulative_stats`), and the first-k eigenvalue
//! agreement — and asserts the learned hierarchy is bit-identical
//! across thread counts.
//!
//! Usage: `bench_learn [--threads N] [--m 30] [--iters 6] [--quick]`

use sgl_bench::{banner, fix, repro_dir, sci, time, Args, Table};
use sgl_core::{compare_spectra, LearnResult, Measurements, SglConfig, SglSession, SpectrumMethod};
use sgl_datasets::delaunay::{delaunay, Point};
use sgl_graph::Graph;
use sgl_linalg::{par, DenseMatrix, Rng};
use sgl_multilevel::{learn_multilevel, HierarchyOptions, MultilevelOptions, MultilevelResult};
use sgl_solver::SolveStats;
use std::io::Write;

/// A named workload: measurements to learn from (and the truth size).
struct Scenario {
    name: &'static str,
    nodes: usize,
    meas: Measurements,
}

/// Delaunay mesh over `n` uniform random points, edge weight `1/dist`.
fn delaunay_graph(n: usize, seed: u64) -> Graph {
    let mut rng = Rng::seed_from_u64(seed);
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.uniform(), rng.uniform()))
        .collect();
    let mut edges = Vec::new();
    for tri in delaunay(&pts) {
        for (a, b) in [(tri[0], tri[1]), (tri[1], tri[2]), (tri[0], tri[2])] {
            let dx = pts[a].x - pts[b].x;
            let dy = pts[a].y - pts[b].y;
            let d = (dx * dx + dy * dy).sqrt().max(1e-9);
            edges.push((a, b, 1.0 / d));
        }
    }
    Graph::from_edges(n, edges)
}

/// Random Gaussian-mixture point cloud (`n × dim`) used directly as the
/// data matrix: attribute-graph learning with no simulated circuit.
fn point_cloud(n: usize, dim: usize, seed: u64) -> DenseMatrix {
    let mut rng = Rng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..4).map(|_| rng.normal_vec(dim)).collect();
    DenseMatrix::from_fn(n, dim, |i, j| {
        3.0 * centers[i % 4][j] + rng.standard_normal()
    })
}

struct Run {
    threads: usize,
    wall_s: f64,
    iterations: usize,
    edges: usize,
    converged: bool,
    solver: SolveStats,
    result: LearnResult,
}

fn run_learn(scenario: &Scenario, config: &SglConfig, threads: usize) -> Run {
    let cfg = config.clone().with_parallelism(threads);
    let (result, wall_s) = time(|| {
        let mut session = SglSession::new(cfg, &scenario.meas).expect("session");
        session.run_to_completion().expect("learning");
        session.finish().expect("finish")
    });
    Run {
        threads,
        wall_s,
        iterations: result.trace.len(),
        edges: result.graph.num_edges(),
        converged: result.converged,
        solver: result.solver_stats,
        result,
    }
}

/// Panic unless the two runs learned bit-identical graphs.
fn assert_identical(name: &str, a: &Run, b: &Run) {
    assert_eq!(
        a.result.graph.num_edges(),
        b.result.graph.num_edges(),
        "{name}: edge counts diverge across thread counts"
    );
    for (ea, eb) in a.result.graph.edges().iter().zip(b.result.graph.edges()) {
        assert_eq!(
            (ea.u, ea.v, ea.weight),
            (eb.u, eb.v, eb.weight),
            "{name}: learned graphs diverge across thread counts"
        );
    }
}

/// Flat-vs-multilevel comparison on a convergence-driven grid run.
struct MultilevelBench {
    nodes: usize,
    level_sizes: Vec<usize>,
    coarsening_ratio: f64,
    flat_wall: f64,
    multi_wall: f64,
    flat_stats: SolveStats,
    multi_stats: SolveStats,
    flat_edges: usize,
    multi_edges: usize,
    eig_rel_err: f64,
    eig_corr: f64,
}

/// Panic unless two multilevel runs learned bit-identical hierarchies
/// and graphs.
fn assert_multilevel_identical(a: &MultilevelResult, b: &MultilevelResult) {
    assert_eq!(
        a.level_sizes, b.level_sizes,
        "multilevel: hierarchies diverge across thread counts"
    );
    assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    for (ea, eb) in a.graph.edges().iter().zip(b.graph.edges()) {
        assert_eq!(
            (ea.u, ea.v, ea.weight),
            (eb.u, eb.v, eb.weight),
            "multilevel: learned graphs diverge across thread counts"
        );
    }
}

fn run_multilevel_bench(quick: bool, threads: usize, m: usize) -> MultilevelBench {
    let side = if quick { 40 } else { 224 }; // full: 50,176 nodes ≥ 50k
    let coarsest = if quick { 64 } else { 1024 };
    let truth = sgl_datasets::grid2d(side, side);
    let nodes = truth.num_nodes();
    println!("\nmultilevel scenario: {side}x{side} grid ({nodes} nodes), M = {m}");
    let meas = Measurements::generate(&truth, m, 23).expect("multilevel measurements");
    // Convergence-driven (unlike the fixed-budget rows above) so the
    // eigenvalue agreement between the two pipelines is meaningful.
    let cfg = SglConfig::default()
        .with_tol(1e-6)
        .with_max_iterations(200)
        .with_parallelism(threads);
    let opts = MultilevelOptions {
        hierarchy: HierarchyOptions {
            coarsest_size: coarsest,
            ..HierarchyOptions::default()
        },
        ..MultilevelOptions::default()
    };

    let (flat, flat_wall) = time(|| {
        SglSession::new(cfg.clone(), &meas)
            .expect("flat session")
            .run()
            .expect("flat learn")
    });
    println!(
        "flat:       {:.2}s, {} edges, {} PCG iterations",
        flat_wall,
        flat.graph.num_edges(),
        flat.solver_stats.iterations
    );
    let (multi, multi_wall) =
        time(|| learn_multilevel(&cfg, &meas, &opts).expect("multilevel learn"));
    println!(
        "multilevel: {:.2}s, {} edges, {} PCG iterations, levels {:?}",
        multi_wall,
        multi.graph.num_edges(),
        multi.solver_stats.iterations,
        multi.level_sizes
    );
    // Determinism across thread counts: a guaranteed-serial rerun must
    // reproduce the hierarchy and the graph bit for bit.
    let serial = learn_multilevel(&cfg.clone().with_parallelism(1), &meas, &opts)
        .expect("serial multilevel learn");
    assert_multilevel_identical(&multi, &serial);
    println!("multilevel hierarchy identical at 1 and {threads} threads ✓");

    let cmp = compare_spectra(&flat.graph, &multi.graph, 6, SpectrumMethod::ShiftInvert)
        .expect("spectrum comparison");
    println!(
        "first-6 eigenvalues vs flat: mean relative error {:.4}, correlation {:.4}",
        cmp.mean_relative_error, cmp.correlation
    );
    MultilevelBench {
        nodes,
        level_sizes: multi.level_sizes.clone(),
        coarsening_ratio: cfg.coarsening_ratio,
        flat_wall,
        multi_wall,
        flat_stats: flat.solver_stats,
        multi_stats: multi.solver_stats,
        flat_edges: flat.graph.num_edges(),
        multi_edges: multi.graph.num_edges(),
        eig_rel_err: cmp.mean_relative_error,
        eig_corr: cmp.correlation,
    }
}

fn main() {
    let args = Args::from_env();
    let quick = args.has("quick");
    let threads: usize = args.get("threads", par::max_threads().max(2));
    let m: usize = args.get("m", if quick { 15 } else { 30 });
    let iters: usize = args.get("iters", if quick { 4 } else { 6 });
    banner(
        "BENCH learn",
        "full learning loop at 1 thread vs N threads",
        &[
            ("threads", threads.to_string()),
            ("M", m.to_string()),
            ("iters", iters.to_string()),
            ("host_cores", par::max_threads().to_string()),
        ],
    );

    // Fixed iteration budget (tol 0) so every run does identical work.
    let config = SglConfig::default()
        .with_tol(0.0)
        .with_max_iterations(iters)
        .with_scale_edges(true);

    let (grid_side, delaunay_n, cloud_n) = if quick {
        (24, 600, 500)
    } else {
        (100, 4000, 2500)
    };
    let mut scenarios = Vec::new();
    {
        let truth = sgl_datasets::grid2d(grid_side, grid_side);
        scenarios.push(Scenario {
            name: "grid",
            nodes: truth.num_nodes(),
            meas: Measurements::generate(&truth, m, 7).expect("grid measurements"),
        });
    }
    {
        let truth = delaunay_graph(delaunay_n, 11);
        scenarios.push(Scenario {
            name: "delaunay",
            nodes: truth.num_nodes(),
            meas: Measurements::generate(&truth, m, 13).expect("delaunay measurements"),
        });
    }
    {
        let cloud = point_cloud(cloud_n, m, 17);
        scenarios.push(Scenario {
            name: "knn-cloud",
            nodes: cloud_n,
            meas: Measurements::from_voltages(cloud).expect("cloud measurements"),
        });
    }

    let mut table = Table::new(&[
        "scenario",
        "nodes",
        "threads",
        "wall_s",
        "speedup",
        "iters",
        "edges",
        "pcg_iters",
    ]);
    let mut rows = Vec::new();
    for sc in &scenarios {
        let serial = run_learn(sc, &config, 1);
        let parallel = run_learn(sc, &config, threads);
        assert_identical(sc.name, &serial, &parallel);
        println!(
            "{}: learned graphs identical at 1 and {} threads ✓",
            sc.name, threads
        );
        for run in [serial, parallel] {
            let speedup = rows
                .iter()
                .find(|r: &&(&str, usize, Run)| r.0 == sc.name && r.2.threads == 1)
                .map(|r| r.2.wall_s / run.wall_s)
                .unwrap_or(1.0);
            table.row(&[
                sc.name.to_string(),
                sc.nodes.to_string(),
                run.threads.to_string(),
                fix(run.wall_s, 3),
                fix(speedup, 2),
                run.iterations.to_string(),
                run.edges.to_string(),
                run.solver.iterations.to_string(),
            ]);
            rows.push((sc.name, sc.nodes, run));
        }
    }
    table.print();

    let ml = run_multilevel_bench(quick, threads, m);

    // Hand-rolled JSON (no serde in the offline image).
    let mut json = String::from("{\n  \"bench\": \"learn\",\n");
    json.push_str(&format!("  \"host_cores\": {},\n", par::max_threads()));
    json.push_str(&format!("  \"threads\": {threads},\n  \"rows\": [\n"));
    for (i, (name, nodes, run)) in rows.iter().enumerate() {
        let t1 = rows
            .iter()
            .find(|r| r.0 == *name && r.2.threads == 1)
            .map(|r| r.2.wall_s)
            .unwrap_or(run.wall_s);
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"nodes\": {}, \"threads\": {}, \
             \"wall_s\": {:.9}, \"speedup_vs_serial\": {:.4}, \"iterations\": {}, \
             \"edges\": {}, \"converged\": {}, \"solver_solves\": {}, \
             \"solver_pcg_iterations\": {}, \"solver_last_residual\": {:.3e}}}{}\n",
            name,
            nodes,
            run.threads,
            run.wall_s,
            t1 / run.wall_s,
            run.iterations,
            run.edges,
            run.converged,
            run.solver.solves,
            run.solver.iterations,
            run.solver.last_relative_residual,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    let levels: Vec<String> = ml.level_sizes.iter().map(|s| s.to_string()).collect();
    json.push_str(&format!(
        "  \"multilevel\": {{\"scenario\": \"grid\", \"nodes\": {}, \
         \"levels\": {}, \"level_sizes\": [{}], \"coarsening_ratio\": {}, \
         \"wall_s_flat\": {:.9}, \"wall_s_multilevel\": {:.9}, \
         \"pcg_iterations_flat\": {}, \"pcg_iterations_multilevel\": {}, \
         \"solves_flat\": {}, \"solves_multilevel\": {}, \
         \"edges_flat\": {}, \"edges_multilevel\": {}, \
         \"eig_rel_err_vs_flat\": {}, \"eig_corr_vs_flat\": {:.6}, \
         \"bit_identical_across_threads\": true}}\n",
        ml.nodes,
        ml.level_sizes.len(),
        levels.join(", "),
        ml.coarsening_ratio,
        ml.flat_wall,
        ml.multi_wall,
        ml.flat_stats.iterations,
        ml.multi_stats.iterations,
        ml.flat_stats.solves,
        ml.multi_stats.solves,
        ml.flat_edges,
        ml.multi_edges,
        sci(ml.eig_rel_err),
        ml.eig_corr,
    ));
    json.push_str("}\n");
    let path = repro_dir().join("BENCH_learn.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_learn.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_learn.json");
    println!("\nwrote {}", path.display());
}
