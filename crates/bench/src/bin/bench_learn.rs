//! End-to-end learning-loop benchmark across the parallel execution
//! layer and the incremental solver-revision path: the full SGL
//! pipeline (kNN build → densification loop → edge scaling) on several
//! scenarios, at 1 worker thread and at N, emitting
//! `target/repro/BENCH_learn.json` — the perf trajectory tracked across
//! PRs via the committed snapshot `BENCH_learn.json` at the repo root.
//!
//! Scenarios:
//! * `grid`     — 2-D mesh with simulated voltage/current measurements;
//! * `delaunay` — Delaunay triangulation of random points (mesh-like,
//!   irregular degrees);
//! * `knn-cloud` — a raw point cloud whose coordinates are the data
//!   matrix (GRASPEL-style attribute graph learning, voltage-only).
//!
//! Every run drives the session step by step and probes a fixed set of
//! effective resistances after each iteration — the telemetry workload
//! (leverage scores, convergence diagnostics) that makes the solve
//! layer's per-iteration cost visible: each probe needs a solver handle
//! for the *current* revision, which the incremental-revision path
//! serves from the cached factorization instead of refactoring.
//!
//! Besides the timings the bench *asserts*:
//! * the parallel determinism contract — the graph learned at N threads
//!   is identical (same edges, bit-identical weights) to the 1-thread
//!   run;
//! * the stop contract — runs are convergence-driven (a real tolerance
//!   under a generous iteration cap), and in `--quick` mode every
//!   scenario must land on a genuine stop verdict (`converged` or
//!   `candidates-exhausted`), never the iteration cap;
//! * the revision contract — on the grid scenario, the default policy
//!   holds full factorizations to the refresh cadence
//!   (`handles_built ≤ ⌈iters/4⌉` vs. one-per-iteration for the
//!   always-refactor baseline) while learning the same graph (identical
//!   edge set, weights within solver-tolerance grade);
//! * the strategy contract — the solver-free (SF-SGL) arm finishes a
//!   full learn with `solver_solves == 0` and `handles_built == 0`,
//!   stays bit-identical across thread counts, and on the grid scenario
//!   lands within 5% first-6 eigenvalue error (correlation ≥ 0.99) of
//!   the solver arm;
//! * the multilevel hierarchy is bit-identical across thread counts.
//! * the resilience contract — an interrupt/checkpoint/restore run
//!   continues bit-identical to the uninterrupted one, and a run under
//!   a seeded [`FaultPlan`] (preconditioner breakdown, PCG stagnation,
//!   Woodbury singularity) still converges to the fault-free graph
//!   (identical edge set, weights within 1e-6).
//!
//! Usage: `bench_learn [--threads N] [--m 30] [--iters 60] [--tol 1e-4]
//! [--quick] [--ml-side S] [--fault-seed S] [--schema-against PATH]`
//!
//! `--schema-against` compares the emitted JSON's key set against a
//! tracked snapshot and fails on drift (the CI smoke check).

use sgl_bench::{banner, fix, repro_dir, sci, time, Args, Table};
use sgl_core::resistance::sample_node_pairs;
use sgl_core::{
    compare_spectra, FaultPlan, LearnResult, LearnStrategyKind, Measurements, SglConfig,
    SglSession, SpectrumMethod, StopVerdict,
};
use sgl_datasets::delaunay::{delaunay, Point};
use sgl_graph::Graph;
use sgl_linalg::{par, DenseMatrix, Rng};
use sgl_multilevel::{learn_multilevel, HierarchyOptions, MultilevelOptions, MultilevelResult};
use sgl_solver::{RevisionStats, SolveStats};
use std::io::Write;

/// Resistance probes per iteration (the per-iteration solver workload).
const PROBES_PER_ITER: usize = 8;

/// A named workload: measurements to learn from (and the truth size).
struct Scenario {
    name: &'static str,
    nodes: usize,
    meas: Measurements,
}

/// Delaunay mesh over `n` uniform random points, edge weight `1/dist`.
fn delaunay_graph(n: usize, seed: u64) -> Graph {
    let mut rng = Rng::seed_from_u64(seed);
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.uniform(), rng.uniform()))
        .collect();
    let mut edges = Vec::new();
    for tri in delaunay(&pts) {
        for (a, b) in [(tri[0], tri[1]), (tri[1], tri[2]), (tri[0], tri[2])] {
            let dx = pts[a].x - pts[b].x;
            let dy = pts[a].y - pts[b].y;
            let d = (dx * dx + dy * dy).sqrt().max(1e-9);
            edges.push((a, b, 1.0 / d));
        }
    }
    Graph::from_edges(n, edges)
}

/// Random Gaussian-mixture point cloud (`n × dim`) used directly as the
/// data matrix: attribute-graph learning with no simulated circuit.
fn point_cloud(n: usize, dim: usize, seed: u64) -> DenseMatrix {
    let mut rng = Rng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..4).map(|_| rng.normal_vec(dim)).collect();
    DenseMatrix::from_fn(n, dim, |i, j| {
        3.0 * centers[i % 4][j] + rng.standard_normal()
    })
}

struct Run {
    threads: usize,
    wall_s: f64,
    iterations: usize,
    edges: usize,
    converged: bool,
    solver: SolveStats,
    revisions: RevisionStats,
    result: LearnResult,
}

/// Drive the session step by step, probing effective resistances after
/// every iteration (see the module docs), then finish with Step-5
/// scaling.
fn run_learn(scenario: &Scenario, config: &SglConfig, threads: usize) -> Run {
    let cfg = config.clone().with_parallelism(threads);
    let probes = sample_node_pairs(scenario.meas.num_nodes(), PROBES_PER_ITER, 0x9E0B);
    let (result, wall_s) = time(|| {
        let mut session = SglSession::new(cfg, &scenario.meas).expect("session");
        while !session.is_done() {
            session.step().expect("learning");
            if !session.is_done() {
                let _probe_sp = sgl_trace::span!("probe");
                let est = session.resistance_estimator().expect("estimator");
                est.resistances(&probes).expect("probes");
            }
        }
        session.finish().expect("finish")
    });
    Run {
        threads,
        wall_s,
        iterations: result.trace.len(),
        edges: result.graph.num_edges(),
        converged: result.converged,
        solver: result.solver_stats,
        revisions: result.revision_stats,
        result,
    }
}

/// Panic unless the two runs learned bit-identical graphs.
fn assert_identical(name: &str, a: &Run, b: &Run) {
    assert_eq!(
        a.result.graph.num_edges(),
        b.result.graph.num_edges(),
        "{name}: edge counts diverge across thread counts"
    );
    for (ea, eb) in a.result.graph.edges().iter().zip(b.result.graph.edges()) {
        assert_eq!(
            (ea.u, ea.v, ea.weight),
            (eb.u, eb.v, eb.weight),
            "{name}: learned graphs diverge across thread counts"
        );
    }
}

/// Incremental-revision A/B on one scenario: the configured policy
/// versus `max_delta_rank = 0` (always refactor — the pre-revision
/// behavior and the PR 4 baseline). Asserts the revision acceptance
/// contract: refresh cadence and learned-graph equivalence. When
/// `expect_faster` (the setup-dominated direct-solver arm) the
/// incremental wall-clock must also beat the baseline outright.
struct IncrementalAb {
    name: &'static str,
    nodes: usize,
    baseline: Run,
    incremental: Run,
    max_weight_rel_diff: f64,
}

fn run_incremental_ab(
    scenario: &Scenario,
    config: &SglConfig,
    name: &'static str,
    expect_faster: bool,
) -> IncrementalAb {
    let mut baseline_cfg = config.clone();
    baseline_cfg.solver.max_delta_rank = 0;
    let baseline = run_learn(scenario, &baseline_cfg, 1);
    let incremental = run_learn(scenario, config, 1);

    // Same learned topology, weights to solver-tolerance grade.
    assert_eq!(
        baseline.result.graph.num_edges(),
        incremental.result.graph.num_edges(),
        "{name}: incremental revisions changed the learned edge count"
    );
    let mut max_rel = 0.0f64;
    for (ea, eb) in baseline
        .result
        .graph
        .edges()
        .iter()
        .zip(incremental.result.graph.edges())
    {
        assert_eq!(
            (ea.u, ea.v),
            (eb.u, eb.v),
            "{name}: incremental revisions changed the learned topology"
        );
        max_rel = max_rel.max((ea.weight - eb.weight).abs() / ea.weight.max(1e-300));
    }
    assert!(
        max_rel < 1e-6,
        "{name}: weights drifted {max_rel:.3e} past solver-tolerance grade"
    );
    // The refresh cadence: at most ⌈iters/4⌉ full factorizations with
    // the default policy, versus the baseline's one-per-iteration.
    let cap = incremental.iterations.div_ceil(4);
    assert!(
        incremental.revisions.handles_built <= cap,
        "{name}: {} full factorizations over {} iterations (cadence cap {cap})",
        incremental.revisions.handles_built,
        incremental.iterations
    );
    assert!(
        baseline.revisions.handles_built >= baseline.iterations,
        "{name}: baseline should refactor every iteration ({} builds, {} iters)",
        baseline.revisions.handles_built,
        baseline.iterations
    );
    if expect_faster {
        assert!(
            incremental.wall_s < baseline.wall_s,
            "{name}: incremental revisions should beat per-iteration refactoring \
             ({:.3}s vs {:.3}s)",
            incremental.wall_s,
            baseline.wall_s
        );
    }
    IncrementalAb {
        name,
        nodes: scenario.nodes,
        baseline,
        incremental,
        max_weight_rel_diff: max_rel,
    }
}

/// Solver-vs-solver-free (SF-SGL) strategy A/B on one scenario. The
/// solver-free arm reruns the identical convergence-driven config with
/// [`LearnStrategyKind::SolverFree`]: banded multilevel embeddings, a
/// CG-recurrence Step-5 scaling, truncated-spectrum resistances — no
/// factorization and no solver handle anywhere in the loop. Asserts the
/// zero-solve contract and thread-count determinism; eigenvalue
/// agreement with the solver arm is recorded per scenario and asserted
/// on the grid (the acceptance gate: ≤ 5% mean relative error over the
/// first 6 eigenvalues, correlation ≥ 0.99).
struct StrategyAb {
    name: &'static str,
    nodes: usize,
    solver_wall: f64,
    free: Run,
    eig_rel_err: f64,
    eig_corr: f64,
}

fn run_strategy_ab(
    scenario: &Scenario,
    config: &SglConfig,
    solver_run: &Run,
    threads: usize,
    assert_gate: bool,
) -> StrategyAb {
    let cfg = config.clone().with_strategy(LearnStrategyKind::SolverFree);
    let serial = run_learn(scenario, &cfg, 1);
    let parallel = run_learn(scenario, &cfg, threads);
    assert_identical(scenario.name, &serial, &parallel);
    for run in [&serial, &parallel] {
        assert_eq!(
            run.solver.solves, 0,
            "{}: solver-free arm solved a linear system",
            scenario.name
        );
        assert_eq!(
            run.revisions.handles_built, 0,
            "{}: solver-free arm built a solver handle",
            scenario.name
        );
    }
    let cmp = compare_spectra(
        &solver_run.result.graph,
        &serial.result.graph,
        6,
        SpectrumMethod::ShiftInvert,
    )
    .expect("strategy A/B spectrum comparison");
    // The acceptance gate is asserted at the CI smoke size: at quick
    // scale the two arms walk near-identical trajectories, so spectral
    // drift means the solver-free machinery broke. At full size the
    // arms legitimately pick (slightly) different edge sets over many
    // more iterations, so agreement is recorded, not asserted.
    if assert_gate && scenario.name == "grid" {
        assert!(
            cmp.mean_relative_error < 0.05 && cmp.correlation > 0.99,
            "grid: solver-free spectrum drifted from the solver arm: {cmp:?}"
        );
    }
    StrategyAb {
        name: scenario.name,
        nodes: scenario.nodes,
        solver_wall: solver_run.wall_s,
        free: serial,
        eig_rel_err: cmp.mean_relative_error,
        eig_corr: cmp.correlation,
    }
}

/// Flat-vs-multilevel comparison on a convergence-driven grid run.
struct MultilevelBench {
    nodes: usize,
    level_sizes: Vec<usize>,
    coarsening_ratio: f64,
    flat_wall: f64,
    multi_wall: f64,
    flat_stats: SolveStats,
    multi_stats: SolveStats,
    flat_revisions: RevisionStats,
    multi_revisions: RevisionStats,
    flat_edges: usize,
    multi_edges: usize,
    eig_rel_err: f64,
    eig_corr: f64,
}

/// Panic unless two multilevel runs learned bit-identical hierarchies
/// and graphs.
fn assert_multilevel_identical(a: &MultilevelResult, b: &MultilevelResult) {
    assert_eq!(
        a.level_sizes, b.level_sizes,
        "multilevel: hierarchies diverge across thread counts"
    );
    assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    for (ea, eb) in a.graph.edges().iter().zip(b.graph.edges()) {
        assert_eq!(
            (ea.u, ea.v, ea.weight),
            (eb.u, eb.v, eb.weight),
            "multilevel: learned graphs diverge across thread counts"
        );
    }
}

fn run_multilevel_bench(side: usize, threads: usize, m: usize) -> MultilevelBench {
    let coarsest = if side <= 48 { 64 } else { 1024 };
    let truth = sgl_datasets::grid2d(side, side);
    let nodes = truth.num_nodes();
    println!("\nmultilevel scenario: {side}x{side} grid ({nodes} nodes), M = {m}");
    let meas = Measurements::generate(&truth, m, 23).expect("multilevel measurements");
    // Convergence-driven (unlike the fixed-budget rows above) so the
    // eigenvalue agreement between the two pipelines is meaningful.
    let cfg = SglConfig::default()
        .with_tol(1e-6)
        .with_max_iterations(200)
        .with_parallelism(threads);
    let opts = MultilevelOptions {
        hierarchy: HierarchyOptions {
            coarsest_size: coarsest,
            ..HierarchyOptions::default()
        },
        ..MultilevelOptions::default()
    };

    let (flat, flat_wall) = time(|| {
        SglSession::new(cfg.clone(), &meas)
            .expect("flat session")
            .run()
            .expect("flat learn")
    });
    println!(
        "flat:       {:.2}s, {} edges, {} PCG iterations",
        flat_wall,
        flat.graph.num_edges(),
        flat.solver_stats.iterations
    );
    let (multi, multi_wall) =
        time(|| learn_multilevel(&cfg, &meas, &opts).expect("multilevel learn"));
    println!(
        "multilevel: {:.2}s, {} edges, {} PCG iterations, levels {:?}",
        multi_wall,
        multi.graph.num_edges(),
        multi.solver_stats.iterations,
        multi.level_sizes
    );
    // Determinism across thread counts: a guaranteed-serial rerun must
    // reproduce the hierarchy and the graph bit for bit.
    let serial = learn_multilevel(&cfg.clone().with_parallelism(1), &meas, &opts)
        .expect("serial multilevel learn");
    assert_multilevel_identical(&multi, &serial);
    println!("multilevel hierarchy identical at 1 and {threads} threads ✓");

    let cmp = compare_spectra(&flat.graph, &multi.graph, 6, SpectrumMethod::ShiftInvert)
        .expect("spectrum comparison");
    println!(
        "first-6 eigenvalues vs flat: mean relative error {:.4}, correlation {:.4}",
        cmp.mean_relative_error, cmp.correlation
    );
    MultilevelBench {
        nodes,
        level_sizes: multi.level_sizes.clone(),
        coarsening_ratio: cfg.coarsening_ratio,
        flat_wall,
        multi_wall,
        flat_stats: flat.solver_stats,
        multi_stats: multi.solver_stats,
        flat_revisions: flat.revision_stats,
        multi_revisions: multi.revision_stats,
        flat_edges: flat.graph.num_edges(),
        multi_edges: multi.graph.num_edges(),
        eig_rel_err: cmp.mean_relative_error,
        eig_corr: cmp.correlation,
    }
}

/// Total forced refreshes of a revision counter set.
fn refreshes(r: &RevisionStats) -> usize {
    r.refreshes_on_rank + r.refreshes_on_iters + r.refreshes_on_numeric
}

/// The resilience arm: interrupt/checkpoint/restore plus a seeded-fault
/// rerun, both on the grid scenario against its fault-free serial row.
struct ResilienceBench {
    nodes: usize,
    /// Iteration at which the session was checkpointed.
    checkpoint_iteration: usize,
    checkpoint_bytes: u64,
    checkpoint_write_s: f64,
    restore_s: f64,
    /// Restore-then-continue learned the same graph, bit for bit, as
    /// the uninterrupted continuation.
    resumed: bool,
    /// Faults the seeded plan actually fired.
    faults_injected: usize,
    fault_kinds: Vec<&'static str>,
    precond_downgrades: usize,
    fallbacks_taken: usize,
    /// Per-iteration resistance probes dropped because an injected
    /// fault surfaced through the telemetry path (learning continued).
    probe_failures: usize,
    fault_run_converged: bool,
    /// Max relative weight drift of the faulted run vs. the fault-free
    /// reference (identical edge sets asserted).
    max_weight_rel_diff: f64,
}

fn run_resilience_bench(
    scenario: &Scenario,
    config: &SglConfig,
    reference: &Run,
    fault_seed: u64,
) -> ResilienceBench {
    let cfg = config.clone().with_parallelism(1);

    // --- Interrupt & resume -------------------------------------------
    // Step a session partway, checkpoint it, and race the continuation
    // against a restore-from-disk. Both must finish bit-identical.
    let mut live = SglSession::new(cfg.clone(), &scenario.meas).expect("session");
    let checkpoint_iteration = 3usize;
    for _ in 0..checkpoint_iteration {
        if live.is_done() {
            break;
        }
        live.step().expect("pre-checkpoint step");
    }
    let ckpt = repro_dir().join("bench_learn_interrupt.sglck");
    let ((), checkpoint_write_s) = time(|| live.checkpoint(&ckpt).expect("checkpoint"));
    let checkpoint_bytes = std::fs::metadata(&ckpt).map(|m| m.len()).unwrap_or(0);
    let (restored, restore_s) = time(|| SglSession::restore(&ckpt, cfg.clone()).expect("restore"));
    let mut restored = restored;
    live.run_to_completion().expect("continue after checkpoint");
    restored.run_to_completion().expect("resume from disk");
    let continued = live.finish().expect("finish continued");
    let resumed_result = restored.finish().expect("finish resumed");
    std::fs::remove_file(&ckpt).ok();
    let resumed = continued.graph.num_edges() == resumed_result.graph.num_edges()
        && continued
            .graph
            .edges()
            .iter()
            .zip(resumed_result.graph.edges())
            .all(|(a, b)| (a.u, a.v) == (b.u, b.v) && a.weight.to_bits() == b.weight.to_bits())
        && continued.trace == resumed_result.trace
        && continued.scale_factor.map(f64::to_bits)
            == resumed_result.scale_factor.map(f64::to_bits);
    assert!(
        resumed,
        "grid: restore-from-checkpoint diverged from the uninterrupted continuation"
    );

    // --- Seeded-fault run ---------------------------------------------
    // The standard seeded schedule fires on the probe workload's solver
    // traffic (handle builds, solves, delta corrections). Probes that a
    // fault reaches are dropped and counted; learning itself recovers
    // through the ladder and must land on the fault-free graph.
    let plan = std::sync::Arc::new(FaultPlan::seeded(fault_seed));
    let probes = sample_node_pairs(scenario.meas.num_nodes(), PROBES_PER_ITER, 0x9E0B);
    let mut probe_failures = 0usize;
    let mut session = SglSession::new(cfg, &scenario.meas).expect("faulted session");
    session.set_fault_plan(std::sync::Arc::clone(&plan));
    while !session.is_done() {
        session.step().expect("faulted learning");
        if !session.is_done() {
            let _probe_sp = sgl_trace::span!("probe");
            let probed = session
                .resistance_estimator()
                .and_then(|est| est.resistances(&probes));
            if probed.is_err() {
                probe_failures += 1;
            }
        }
    }
    let faulted = session.finish().expect("faulted finish");
    assert_eq!(
        faulted.graph.num_edges(),
        reference.result.graph.num_edges(),
        "grid: faulted run learned a different edge count"
    );
    let mut max_rel = 0.0f64;
    for (ea, eb) in reference
        .result
        .graph
        .edges()
        .iter()
        .zip(faulted.graph.edges())
    {
        assert_eq!(
            (ea.u, ea.v),
            (eb.u, eb.v),
            "grid: faulted run learned a different topology"
        );
        max_rel = max_rel.max((ea.weight - eb.weight).abs() / ea.weight.abs().max(1e-300));
    }
    assert!(
        max_rel <= 1e-6,
        "grid: faulted run drifted {max_rel:.3e} past the 1e-6 equivalence gate"
    );
    assert!(
        plan.injected_count() >= 1,
        "grid: the seeded fault plan never fired — no solver traffic reached it"
    );

    ResilienceBench {
        nodes: scenario.nodes,
        checkpoint_iteration,
        checkpoint_bytes,
        checkpoint_write_s,
        restore_s,
        resumed,
        faults_injected: plan.injected_count(),
        fault_kinds: plan.injected().iter().map(|e| e.kind.as_str()).collect(),
        precond_downgrades: faulted.revision_stats.precond_downgrades,
        fallbacks_taken: faulted.fallbacks_taken,
        probe_failures,
        fault_run_converged: faulted.converged,
        max_weight_rel_diff: max_rel,
    }
}

/// The leaf phases of one learn run — every span name that holds real
/// work and has no traced children, so their durations partition the
/// wall-clock without double counting (parents like `iteration` are
/// excluded).
const LEAF_PHASES: &[&str] = &[
    "knn_build",
    "init",
    "score",
    "densify",
    "refine",
    "probe",
    "finish_embed",
    "scale",
];

/// The observability arm: a traced rerun of the grid scenario proving
/// the tracing contracts — the learned graph is bit-identical with the
/// recorder on (at 1 and N threads), the per-phase breakdown accounts
/// for the run's wall-clock, and the instrumentation left compiled into
/// the hot paths costs under 1% of the serial wall when disabled.
struct TraceBench {
    phases: Vec<sgl_trace::PhaseTotal>,
    /// Wall-clock of the traced serial run the phases partition.
    wall_s: f64,
    /// Sum of leaf-phase durations over `wall_s`.
    coverage: f64,
    events: usize,
    disabled_ns_per_span: f64,
    /// Disabled-path cost of all events a run records, as a percentage
    /// of the untraced serial wall — the "zero-overhead" budget.
    est_overhead_pct: f64,
    untraced_wall_s: f64,
}

fn run_trace_bench(
    scenario: &Scenario,
    config: &SglConfig,
    untraced_serial: &Run,
    untraced_parallel: &Run,
    threads: usize,
    trace_out: Option<&std::path::Path>,
) -> TraceBench {
    // Disabled-path cost per span site: one relaxed atomic load and an
    // inert guard. Measured directly so the budget below is the real
    // per-event price on this host, not a guess.
    assert!(
        !sgl_trace::enabled(),
        "trace bench must start with the recorder off"
    );
    let reps: u64 = 4_000_000;
    let ((), probe_wall) = time(|| {
        for _ in 0..reps {
            let g = sgl_trace::span("trace_noop");
            std::hint::black_box(&g);
        }
    });
    let disabled_ns_per_span = probe_wall * 1e9 / reps as f64;

    // Traced rerun, serial and parallel: tracing must never touch the
    // deterministic control path, so the learned graphs have to match
    // the untraced rows bit for bit.
    sgl_trace::clear();
    sgl_trace::reset_metrics();
    sgl_trace::enable();
    let traced_serial = run_learn(scenario, config, 1);
    let events = sgl_trace::take_events();
    let traced_parallel = run_learn(scenario, config, threads);
    sgl_trace::disable();
    sgl_trace::clear();
    assert_identical("grid-traced-serial", untraced_serial, &traced_serial);
    assert_identical("grid-traced-parallel", untraced_parallel, &traced_parallel);
    println!(
        "\ntrace: learned graphs bit-identical with the recorder on, 1 and {threads} threads ✓"
    );

    let phases = sgl_trace::phase_totals(&events, LEAF_PHASES);
    let phase_total_s: f64 = phases.iter().map(|p| p.total_ns as f64 / 1e9).sum();
    let coverage = phase_total_s / traced_serial.wall_s;
    for p in &phases {
        println!(
            "trace: {:>12}  {:>9.4}s  {:>5.1}%  ({} spans)",
            p.name,
            p.total_ns as f64 / 1e9,
            p.total_ns as f64 / 1e9 / traced_serial.wall_s * 100.0,
            p.count
        );
    }
    println!(
        "trace: leaf phases cover {:.1}% of the {:.3}s traced wall ({} events)",
        coverage * 100.0,
        traced_serial.wall_s,
        events.len()
    );
    assert!(
        (0.95..=1.05).contains(&coverage),
        "phase breakdown covers {:.1}% of the wall-clock; \
         the leaf spans no longer partition the run",
        coverage * 100.0
    );

    // The budget: every event the traced run recorded exists as a span
    // or instant site the untraced run also passes through. Disabled,
    // each costs `disabled_ns_per_span`; the total must stay under 1%
    // of the untraced serial wall.
    let est_overhead_pct =
        disabled_ns_per_span * events.len() as f64 / (untraced_serial.wall_s * 1e9) * 100.0;
    println!(
        "trace: disabled span costs {disabled_ns_per_span:.2}ns; {} events over a {:.3}s run \
         = {est_overhead_pct:.4}% disabled overhead (budget 1%)",
        events.len(),
        untraced_serial.wall_s
    );
    assert!(
        est_overhead_pct < 1.0,
        "disabled tracing costs {est_overhead_pct:.3}% of the serial wall (budget 1%)"
    );

    if let Some(path) = trace_out {
        sgl_trace::write_chrome_trace(path, &events).expect("write chrome trace");
        let folded = path.with_extension("folded");
        std::fs::write(&folded, sgl_trace::folded_stacks(&events)).expect("write folded stacks");
        println!("wrote {} and {}", path.display(), folded.display());
    }

    TraceBench {
        phases,
        wall_s: traced_serial.wall_s,
        coverage,
        events: events.len(),
        disabled_ns_per_span,
        est_overhead_pct,
        untraced_wall_s: untraced_serial.wall_s,
    }
}

/// Extract the sorted set of JSON object keys (`"key":`) — the schema
/// fingerprint the CI smoke run diffs against the tracked snapshot.
fn json_keys(text: &str) -> Vec<String> {
    let mut keys = std::collections::BTreeSet::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            if let Some(end) = text[i + 1..].find('"') {
                let key = &text[i + 1..i + 1 + end];
                let rest = text[i + 1 + end + 1..].trim_start();
                if rest.starts_with(':') {
                    keys.insert(key.to_string());
                }
                i += end + 2;
                continue;
            }
        }
        i += 1;
    }
    keys.into_iter().collect()
}

fn main() {
    let args = Args::from_env();
    let quick = args.has("quick");
    let threads: usize = args.get("threads", par::max_threads().max(2));
    let m: usize = args.get("m", if quick { 15 } else { 30 });
    let iters: usize = args.get("iters", if quick { 40 } else { 60 });
    let tol: f64 = args.get("tol", 1e-4);
    let ml_side: usize = args.get("ml-side", if quick { 40 } else { 224 });
    let fault_seed: u64 = args.get("fault-seed", 42);
    // The deterministic par layer is happy to oversubscribe (the
    // determinism contract is thread-count independent), but record the
    // host's real parallelism so the tracked timings are interpretable.
    let effective_threads = threads.min(par::max_threads());
    if threads > par::max_threads() {
        sgl_trace::warn!(
            "{threads} worker threads requested but the host has only {} cores; \
             parallel arms will oversubscribe (effective_threads = {effective_threads})",
            par::max_threads()
        );
    }
    sgl_sfsgl::register();
    banner(
        "BENCH learn",
        "full learning loop at 1 thread vs N threads, with per-iteration resistance probes",
        &[
            ("threads", threads.to_string()),
            ("effective_threads", effective_threads.to_string()),
            ("M", m.to_string()),
            ("iters", iters.to_string()),
            ("tol", format!("{tol:.0e}")),
            ("ml_side", ml_side.to_string()),
            ("probes", PROBES_PER_ITER.to_string()),
            ("host_cores", par::max_threads().to_string()),
        ],
    );

    // Convergence-driven: a real tolerance under a generous iteration
    // cap, so each row's stop verdict is meaningful (and asserted below)
    // instead of every scenario reporting "max-iterations".
    let config = SglConfig::default()
        .with_tol(tol)
        .with_max_iterations(iters)
        .with_scale_edges(true);

    let (grid_side, delaunay_n, cloud_n) = if quick {
        (24, 600, 500)
    } else {
        (100, 4000, 2500)
    };
    let mut scenarios = Vec::new();
    {
        let truth = sgl_datasets::grid2d(grid_side, grid_side);
        scenarios.push(Scenario {
            name: "grid",
            nodes: truth.num_nodes(),
            meas: Measurements::generate(&truth, m, 7).expect("grid measurements"),
        });
    }
    {
        let truth = delaunay_graph(delaunay_n, 11);
        scenarios.push(Scenario {
            name: "delaunay",
            nodes: truth.num_nodes(),
            meas: Measurements::generate(&truth, m, 13).expect("delaunay measurements"),
        });
    }
    {
        let cloud = point_cloud(cloud_n, m, 17);
        scenarios.push(Scenario {
            name: "knn-cloud",
            nodes: cloud_n,
            meas: Measurements::from_voltages(cloud).expect("cloud measurements"),
        });
    }

    let mut table = Table::new(&[
        "scenario",
        "nodes",
        "threads",
        "wall_s",
        "speedup",
        "iters",
        "edges",
        "pcg_iters",
        "handles",
        "delta_upd",
    ]);
    let mut rows = Vec::new();
    for sc in &scenarios {
        let serial = run_learn(sc, &config, 1);
        let parallel = run_learn(sc, &config, threads);
        assert_identical(sc.name, &serial, &parallel);
        println!(
            "{}: learned graphs identical at 1 and {} threads ✓",
            sc.name, threads
        );
        // The stop contract: a convergence-driven run must land on a
        // genuine verdict. In quick mode the scenarios are small enough
        // that the cap must never be the reason the loop stopped.
        for run in [&serial, &parallel] {
            assert_ne!(
                run.result.stop_verdict,
                StopVerdict::InProgress,
                "{}: session finished while still in progress",
                sc.name
            );
            if quick {
                assert!(
                    matches!(
                        run.result.stop_verdict,
                        StopVerdict::Converged
                            | StopVerdict::CandidatesExhausted
                            | StopVerdict::Stalled
                    ),
                    "{}: small scenario stopped on {:?} instead of converging",
                    sc.name,
                    run.result.stop_verdict
                );
            }
        }
        for run in [serial, parallel] {
            let speedup = rows
                .iter()
                .find(|r: &&(&str, usize, Run)| r.0 == sc.name && r.2.threads == 1)
                .map(|r| r.2.wall_s / run.wall_s)
                .unwrap_or(1.0);
            table.row(&[
                sc.name.to_string(),
                sc.nodes.to_string(),
                run.threads.to_string(),
                fix(run.wall_s, 3),
                fix(speedup, 2),
                run.iterations.to_string(),
                run.edges.to_string(),
                run.solver.iterations.to_string(),
                run.revisions.handles_built.to_string(),
                run.revisions.delta_updates.to_string(),
            ]);
            rows.push((sc.name, sc.nodes, run));
        }
    }
    table.print();

    // Strategy A/B: the solver-free (SF-SGL) arm against the solver rows
    // above, same config, per scenario. Serial + N-thread runs with the
    // zero-solve and determinism contracts asserted inside.
    let mut strategy_abs = Vec::new();
    for sc in &scenarios {
        let solver_serial = &rows
            .iter()
            .find(|r| r.0 == sc.name && r.2.threads == 1)
            .expect("serial solver row")
            .2;
        let ab = run_strategy_ab(sc, &config, solver_serial, threads, quick);
        println!(
            "\nsolver-free ({}, {} nodes): {:.3}s vs solver {:.3}s, {} iterations, \
             0 solves / 0 handles ✓, eig rel err {:.4}, corr {:.4}",
            ab.name,
            ab.nodes,
            ab.free.wall_s,
            ab.solver_wall,
            ab.free.iterations,
            ab.eig_rel_err,
            ab.eig_corr
        );
        strategy_abs.push(ab);
    }

    // Incremental-revision A/Bs against the always-refactor baseline
    // (max_delta_rank = 0 — the pre-revision, PR 4 behavior). These run
    // on a fixed iteration budget (tol 0) so the baseline and the
    // incremental arm do identical work — the cadence and equivalence
    // contracts compare per-iteration behavior, not stopping decisions.
    //
    // * `grid-auto`  — the main grid scenario under the default (Auto →
    //   AMG) policy: asserts the refresh cadence and learned-graph
    //   equivalence. Setup for the iterative preconditioners on
    //   ultra-sparse graphs is cheap, so wall-clock is expected to be
    //   roughly neutral here; the contract is the cadence.
    // * `grid-dense` — a dense-Cholesky-sized grid under the exact
    //   direct policy, the setup-dominated regime the Woodbury path
    //   targets (`O(N³)` refactor vs. `O(N²)` corrected solves): here
    //   the incremental path must also win wall-clock outright.
    let budget_iters = if quick { 4 } else { 6 };
    let fixed_budget = SglConfig::default()
        .with_tol(0.0)
        .with_max_iterations(budget_iters)
        .with_scale_edges(true);
    let ab_auto = run_incremental_ab(&scenarios[0], &fixed_budget, "grid-auto", false);
    let dense_scenario = {
        let side = if quick { 20 } else { 48 };
        let truth = sgl_datasets::grid2d(side, side);
        Scenario {
            name: "grid-dense",
            nodes: truth.num_nodes(),
            meas: Measurements::generate(&truth, m, 19).expect("dense-grid measurements"),
        }
    };
    let mut dense_cfg = fixed_budget.clone();
    dense_cfg.solver.method = sgl_core::PolicyMethod::DenseCholesky;
    dense_cfg.solver.dense_max_nodes = 0;
    let ab_dense = run_incremental_ab(&dense_scenario, &dense_cfg, "grid-dense", true);
    let abs = [ab_auto, ab_dense];
    for ab in &abs {
        println!(
            "\nincremental revisions ({}, {} nodes, 1 thread): baseline {:.3}s / {} \
             factorizations → incremental {:.3}s / {} factorizations, {} delta updates \
             (rank {}), {} forced refreshes, max weight drift {:.2e} ✓",
            ab.name,
            ab.nodes,
            ab.baseline.wall_s,
            ab.baseline.revisions.handles_built,
            ab.incremental.wall_s,
            ab.incremental.revisions.handles_built,
            ab.incremental.revisions.delta_updates,
            ab.incremental.revisions.delta_rank_applied,
            refreshes(&ab.incremental.revisions),
            ab.max_weight_rel_diff,
        );
    }

    let ml = run_multilevel_bench(ml_side, threads, m);

    // Resilience arm: interrupt/resume + seeded faults on the grid
    // scenario, against its fault-free serial row.
    let grid_serial = &rows
        .iter()
        .find(|r| r.0 == "grid" && r.2.threads == 1)
        .expect("serial grid row")
        .2;
    let res = run_resilience_bench(&scenarios[0], &config, grid_serial, fault_seed);
    println!(
        "\nresilience (grid, {} nodes): checkpoint at iteration {} ({} bytes, {:.4}s write, \
         {:.4}s restore), resumed bit-identical ✓; seeded faults (seed {fault_seed}): \
         {} injected [{}], {} downgrades, {} fallbacks, {} probes dropped, \
         max weight drift {:.2e} vs fault-free ✓",
        res.nodes,
        res.checkpoint_iteration,
        res.checkpoint_bytes,
        res.checkpoint_write_s,
        res.restore_s,
        res.faults_injected,
        res.fault_kinds.join(", "),
        res.precond_downgrades,
        res.fallbacks_taken,
        res.probe_failures,
        res.max_weight_rel_diff,
    );

    // Observability arm: traced grid rerun (bit-identity + phase
    // breakdown) and the disabled-path overhead budget. `--trace PATH`
    // additionally exports the Chrome trace and folded stacks.
    let trace_path = {
        let flag = args.get("trace", String::new());
        (!flag.is_empty()).then(|| std::path::PathBuf::from(flag))
    };
    let grid_parallel = &rows
        .iter()
        .find(|r| r.0 == "grid" && r.2.threads == threads)
        .expect("parallel grid row")
        .2;
    let tb = run_trace_bench(
        &scenarios[0],
        &config,
        grid_serial,
        grid_parallel,
        threads,
        trace_path.as_deref(),
    );

    // Hand-rolled JSON (no serde in the offline image).
    let mut json = String::from("{\n  \"bench\": \"learn\",\n");
    json.push_str(&format!("  \"host_cores\": {},\n", par::max_threads()));
    json.push_str(&format!("  \"effective_threads\": {effective_threads},\n"));
    json.push_str(&format!(
        "  \"args\": \"threads={threads} m={m} iters={iters} tol={tol:e} ml_side={ml_side} \
         fault_seed={fault_seed} quick={quick}\",\n"
    ));
    json.push_str(&format!("  \"probes_per_iteration\": {PROBES_PER_ITER},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n  \"rows\": [\n"));
    for (i, (name, nodes, run)) in rows.iter().enumerate() {
        let t1 = rows
            .iter()
            .find(|r| r.0 == *name && r.2.threads == 1)
            .map(|r| r.2.wall_s)
            .unwrap_or(run.wall_s);
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"nodes\": {}, \"threads\": {}, \
             \"wall_s\": {:.9}, \"speedup_vs_serial\": {:.4}, \"iterations\": {}, \
             \"edges\": {}, \"converged\": {}, \"stop_reason\": \"{}\", \"solver_solves\": {}, \
             \"solver_pcg_iterations\": {}, \"solver_last_residual\": {:.3e}, \
             \"handles_built\": {}, \"delta_updates\": {}, \"delta_rank\": {}, \
             \"refreshes\": {}}}{}\n",
            name,
            nodes,
            run.threads,
            run.wall_s,
            t1 / run.wall_s,
            run.iterations,
            run.edges,
            run.converged,
            run.result.stop_verdict.as_str(),
            run.solver.solves,
            run.solver.iterations,
            run.solver.last_relative_residual,
            run.revisions.handles_built,
            run.revisions.delta_updates,
            run.revisions.delta_rank_applied,
            refreshes(&run.revisions),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"strategy_ab\": [\n");
    for (i, ab) in strategy_abs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"nodes\": {}, \"strategy\": \"solver-free\", \
             \"wall_s_solver\": {:.9}, \"wall_s_solver_free\": {:.9}, \"iterations\": {}, \
             \"edges\": {}, \"converged\": {}, \"stop_reason\": \"{}\", \
             \"solver_solves\": {}, \"handles_built\": {}, \
             \"eig_rel_err_vs_solver\": {}, \"eig_corr_vs_solver\": {:.6}, \
             \"bit_identical_across_threads\": true}}{}\n",
            ab.name,
            ab.nodes,
            ab.solver_wall,
            ab.free.wall_s,
            ab.free.iterations,
            ab.free.edges,
            ab.free.converged,
            ab.free.result.stop_verdict.as_str(),
            ab.free.solver.solves,
            ab.free.revisions.handles_built,
            sci(ab.eig_rel_err),
            ab.eig_corr,
            if i + 1 < strategy_abs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"incremental\": [\n");
    for (i, ab) in abs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"nodes\": {}, \"iterations\": {}, \
             \"wall_s_baseline\": {:.9}, \"wall_s_incremental\": {:.9}, \
             \"handles_built_baseline\": {}, \"handles_built_incremental\": {}, \
             \"delta_updates_incremental\": {}, \"delta_rank_incremental\": {}, \
             \"refreshes_incremental\": {}, \"pcg_iterations_baseline\": {}, \
             \"pcg_iterations_incremental\": {}, \"max_weight_rel_diff\": {}, \
             \"graphs_equivalent\": true}}{}\n",
            ab.name,
            ab.nodes,
            ab.incremental.iterations,
            ab.baseline.wall_s,
            ab.incremental.wall_s,
            ab.baseline.revisions.handles_built,
            ab.incremental.revisions.handles_built,
            ab.incremental.revisions.delta_updates,
            ab.incremental.revisions.delta_rank_applied,
            refreshes(&ab.incremental.revisions),
            ab.baseline.solver.iterations,
            ab.incremental.solver.iterations,
            sci(ab.max_weight_rel_diff),
            if i + 1 < abs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    let levels: Vec<String> = ml.level_sizes.iter().map(|s| s.to_string()).collect();
    json.push_str(&format!(
        "  \"multilevel\": {{\"scenario\": \"grid\", \"nodes\": {}, \
         \"levels\": {}, \"level_sizes\": [{}], \"coarsening_ratio\": {}, \
         \"wall_s_flat\": {:.9}, \"wall_s_multilevel\": {:.9}, \
         \"pcg_iterations_flat\": {}, \"pcg_iterations_multilevel\": {}, \
         \"solves_flat\": {}, \"solves_multilevel\": {}, \
         \"handles_built_flat\": {}, \"handles_built_multilevel\": {}, \
         \"delta_updates_flat\": {}, \"delta_updates_multilevel\": {}, \
         \"edges_flat\": {}, \"edges_multilevel\": {}, \
         \"eig_rel_err_vs_flat\": {}, \"eig_corr_vs_flat\": {:.6}, \
         \"bit_identical_across_threads\": true}},\n",
        ml.nodes,
        ml.level_sizes.len(),
        levels.join(", "),
        ml.coarsening_ratio,
        ml.flat_wall,
        ml.multi_wall,
        ml.flat_stats.iterations,
        ml.multi_stats.iterations,
        ml.flat_stats.solves,
        ml.multi_stats.solves,
        ml.flat_revisions.handles_built,
        ml.multi_revisions.handles_built,
        ml.flat_revisions.delta_updates,
        ml.multi_revisions.delta_updates,
        ml.flat_edges,
        ml.multi_edges,
        sci(ml.eig_rel_err),
        ml.eig_corr,
    ));
    json.push_str("  \"phase_breakdown\": {\"scenario\": \"grid\", ");
    json.push_str(&format!(
        "\"wall_s\": {:.9}, \"coverage\": {:.4}, \"events\": {}, \"phases\": [\n",
        tb.wall_s, tb.coverage, tb.events
    ));
    for (i, p) in tb.phases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"phase\": \"{}\", \"total_s\": {:.9}, \"share\": {:.4}, \"spans\": {}}}{}\n",
            p.name,
            p.total_ns as f64 / 1e9,
            p.total_ns as f64 / 1e9 / tb.wall_s,
            p.count,
            if i + 1 < tb.phases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]},\n");
    json.push_str(&format!(
        "  \"trace_overhead\": {{\"disabled_ns_per_span\": {:.3}, \"events_per_run\": {}, \
         \"disabled_overhead_pct\": {:.6}, \"wall_s_untraced\": {:.9}, \
         \"wall_s_traced\": {:.9}, \"bit_identical_traced_vs_untraced\": true}},\n",
        tb.disabled_ns_per_span, tb.events, tb.est_overhead_pct, tb.untraced_wall_s, tb.wall_s,
    ));
    let kinds: Vec<String> = res.fault_kinds.iter().map(|k| format!("\"{k}\"")).collect();
    json.push_str(&format!(
        "  \"resilience\": {{\"scenario\": \"grid\", \"nodes\": {}, \"fault_seed\": {}, \
         \"checkpoint_iteration\": {}, \"checkpoint_bytes\": {}, \
         \"checkpoint_write_s\": {:.9}, \"restore_s\": {:.9}, \"resumed\": {}, \
         \"faults_injected\": {}, \"fault_kinds\": [{}], \"precond_downgrades\": {}, \
         \"fallbacks_taken\": {}, \"probe_failures\": {}, \"fault_run_converged\": {}, \
         \"max_weight_rel_diff\": {}, \"graphs_equivalent\": true}}\n",
        res.nodes,
        fault_seed,
        res.checkpoint_iteration,
        res.checkpoint_bytes,
        res.checkpoint_write_s,
        res.restore_s,
        res.resumed,
        res.faults_injected,
        kinds.join(", "),
        res.precond_downgrades,
        res.fallbacks_taken,
        res.probe_failures,
        res.fault_run_converged,
        sci(res.max_weight_rel_diff),
    ));
    json.push_str("}\n");
    let path = repro_dir().join("BENCH_learn.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_learn.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_learn.json");
    println!("\nwrote {}", path.display());

    // Schema drift check against the tracked snapshot (CI smoke mode).
    if let Some(tracked) = {
        let flag = args.get("schema-against", String::new());
        (!flag.is_empty()).then_some(flag)
    } {
        let snapshot = std::fs::read_to_string(&tracked)
            .unwrap_or_else(|e| panic!("cannot read tracked snapshot {tracked}: {e}"));
        let expect = json_keys(&snapshot);
        let got = json_keys(&json);
        assert_eq!(
            got, expect,
            "BENCH_learn.json schema drifted from the tracked snapshot {tracked}; \
             regenerate and commit it alongside the change"
        );
        println!("schema matches tracked snapshot {tracked} ✓");
    }
}
