//! Figure 11: runtime scalability of SGL (Steps 2–5, excluding kNN
//! construction) over growing 2-D meshes.
//!
//! The paper plots near-linear runtime growth in the node count. We time
//! `Sgl::learn_from_knn` (Steps 2–5 exactly — the kNN graph is built
//! outside the timer) over a mesh-size sweep and report seconds and
//! normalized seconds per node and per iteration.
//!
//! Usage: `fig11_scalability [--m 50] [--iters 10] [--max-side 140] [--quick]`

use sgl_bench::{banner, fix, time, Args, Table};
use sgl_core::{Measurements, Sgl, SglConfig};
use sgl_datasets::grid2d;
use sgl_knn::{build_knn_graph, KnnGraphConfig};

fn main() {
    let args = Args::from_env();
    let m: usize = args.get("m", 50);
    let iters: usize = args.get("iters", 10);
    let max_side: usize = args.get("max-side", if args.has("quick") { 40 } else { 140 });
    banner(
        "Figure 11",
        "runtime scalability of SGL (excluding kNN construction)",
        &[
            ("M", m.to_string()),
            ("iterations_timed", iters.to_string()),
            ("max_side", max_side.to_string()),
        ],
    );

    // Fixed iteration budget isolates per-iteration scaling from
    // convergence-length differences across sizes.
    let config = SglConfig::default()
        .with_tol(0.0)
        .with_max_iterations(iters)
        .with_scale_edges(true);

    let sides: Vec<usize> = [20usize, 30, 40, 60, 80, 100, 120, 140]
        .into_iter()
        .filter(|&s| s <= max_side)
        .collect();
    let mut table = Table::new(&[
        "nodes",
        "edges_knn",
        "seconds",
        "sec_per_iter",
        "usec_per_node_iter",
    ]);
    for side in sides {
        let truth = grid2d(side, side);
        let n = truth.num_nodes();
        let meas = Measurements::generate(&truth, m, 7).expect("measurements");
        let knn = build_knn_graph(
            meas.voltages(),
            &KnnGraphConfig {
                k: 5,
                ..KnnGraphConfig::default()
            },
        );
        let edges_knn = knn.num_edges();
        let (result, secs) = time(|| {
            Sgl::new(config.clone())
                .learn_from_knn(&meas, knn)
                .expect("learning")
        });
        let per_iter = secs / result.trace.len().max(1) as f64;
        table.row(&[
            n.to_string(),
            edges_knn.to_string(),
            fix(secs, 3),
            fix(per_iter, 4),
            fix(per_iter / n as f64 * 1e6, 3),
        ]);
    }
    table.print();
    let csv = table.write_csv("fig11_scalability").expect("csv");
    println!();
    println!("paper: runtime grows nearly linearly with node count;");
    println!("the last column (µs per node-iteration) should stay roughly flat");
    println!("series written to {}", csv.display());
}
