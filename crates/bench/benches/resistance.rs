//! Ablation bench: exact effective resistances (one solve per pair) vs
//! the JL sketch (q solves of preprocessing, O(q) per query).

use criterion::{criterion_group, criterion_main, Criterion};
use sgl_core::{pairwise_effective_resistances, sample_node_pairs, ResistanceSketch};

fn bench_resistance(c: &mut Criterion) {
    let g = sgl_datasets::grid2d(32, 32);
    let n = g.num_nodes();
    let pairs = sample_node_pairs(n, 100, 3);

    let mut group = c.benchmark_group("effective_resistance");
    group.sample_size(10);
    group.bench_function("exact_100_pairs", |b| {
        b.iter(|| pairwise_effective_resistances(&g, &pairs).unwrap())
    });
    group.bench_function("sketch_build_q64", |b| {
        b.iter(|| ResistanceSketch::build(&g, 64, 5).unwrap())
    });
    let sketch = ResistanceSketch::build(&g, 64, 5).unwrap();
    group.bench_function("sketch_query_100_pairs", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(s, t)| sketch.estimate(s, t).unwrap())
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_resistance
}
criterion_main!(benches);
