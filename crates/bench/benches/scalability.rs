//! Criterion companion to Figure 11: SGL Steps 2–5 (kNN excluded) over a
//! mesh-size sweep with a fixed iteration budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sgl_core::{Measurements, Sgl, SglConfig};
use sgl_knn::{build_knn_graph, KnnGraphConfig};

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgl_steps2to5");
    group.sample_size(10);
    for side in [20usize, 30, 40] {
        let truth = sgl_datasets::grid2d(side, side);
        let n = truth.num_nodes();
        let meas = Measurements::generate(&truth, 50, 7).unwrap();
        let knn = build_knn_graph(
            meas.voltages(),
            &KnnGraphConfig {
                k: 5,
                ..KnnGraphConfig::default()
            },
        );
        let cfg = SglConfig::default().with_tol(0.0).with_max_iterations(5);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &knn, |b, knn| {
            b.iter(|| {
                Sgl::new(cfg.clone())
                    .learn_from_knn(&meas, knn.clone())
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_scalability
}
criterion_main!(benches);
