//! The cost of one SGL iteration and the effect of the paper's knobs
//! (`r` — embedding width; `β` — edges per iteration) on a fixed-size
//! learning problem.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgl_core::sensitivity::CandidatePool;
use sgl_core::{spectral_embedding, EmbeddingOptions, Measurements, Sgl, SglConfig};
use sgl_graph::mst::maximum_spanning_tree;
use sgl_knn::{build_knn_graph, KnnGraphConfig};

fn bench_iteration_parts(c: &mut Criterion) {
    let truth = sgl_datasets::grid2d(32, 32);
    let meas = Measurements::generate(&truth, 50, 3).unwrap();
    let knn = build_knn_graph(
        meas.voltages(),
        &KnnGraphConfig {
            k: 5,
            ..KnnGraphConfig::default()
        },
    );
    let tree = maximum_spanning_tree(&knn);
    let graph = tree.to_graph(&knn);
    let pool = CandidatePool::from_off_tree(&knn, &tree, &meas);
    let emb = spectral_embedding(&graph, 4, 0.0, &EmbeddingOptions::default()).unwrap();

    let mut group = c.benchmark_group("sgl_iteration_parts");
    group.sample_size(20);
    group.bench_function("spectral_embedding_cold", |b| {
        b.iter(|| spectral_embedding(&graph, 4, 0.0, &EmbeddingOptions::default()).unwrap())
    });
    group.bench_function("sensitivity_scoring", |b| {
        b.iter(|| pool.sensitivities(&emb))
    });
    group.bench_function("candidate_pool_build", |b| {
        b.iter(|| CandidatePool::from_off_tree(&knn, &tree, &meas))
    });
    group.finish();
}

fn bench_knob_ablation(c: &mut Criterion) {
    let truth = sgl_datasets::grid2d(20, 20);
    let meas = Measurements::generate(&truth, 40, 5).unwrap();

    let mut group = c.benchmark_group("sgl_full_learn_ablation");
    group.sample_size(10);
    for r in [3usize, 5, 8] {
        let cfg = SglConfig::default()
            .with_r(r)
            .with_tol(1e-7)
            .with_max_iterations(80);
        group.bench_function(BenchmarkId::new("r", r), |b| {
            b.iter(|| Sgl::new(cfg.clone()).learn(&meas).unwrap())
        });
    }
    for (label, beta) in [("1e-3", 1e-3), ("1e-2", 1e-2), ("1", 1.0)] {
        let cfg = SglConfig::default()
            .with_beta(beta)
            .with_tol(1e-7)
            .with_max_iterations(200);
        group.bench_function(BenchmarkId::new("beta", label), |b| {
            b.iter(|| Sgl::new(cfg.clone()).learn(&meas).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_iteration_parts, bench_knob_ablation
}
criterion_main!(benches);
