//! Ablation bench: brute-force vs HNSW kNN graph construction on
//! measurement-like data (Step 1 of the pipeline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgl_core::Measurements;
use sgl_knn::{build_knn_graph, BruteForceKnn, HnswIndex, HnswParams, KnnGraphConfig, KnnMethod, NearestNeighbors};

fn measurement_rows(side: usize, m: usize) -> sgl_linalg::DenseMatrix {
    let truth = sgl_datasets::grid2d(side, side);
    let meas = Measurements::generate(&truth, m, 3).unwrap();
    meas.voltages().clone()
}

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_graph_build");
    group.sample_size(10);
    for side in [24usize, 40] {
        let x = measurement_rows(side, 50);
        let n = x.nrows();
        group.bench_function(BenchmarkId::new("brute", n), |b| {
            b.iter(|| {
                build_knn_graph(
                    &x,
                    &KnnGraphConfig {
                        k: 5,
                        ..KnnGraphConfig::default()
                    },
                )
            })
        });
        group.bench_function(BenchmarkId::new("hnsw", n), |b| {
            b.iter(|| {
                build_knn_graph(
                    &x,
                    &KnnGraphConfig {
                        k: 5,
                        method: KnnMethod::Hnsw(HnswParams::default()),
                        ..KnnGraphConfig::default()
                    },
                )
            })
        });
    }
    group.finish();

    // Query-time comparison on a fixed index.
    let mut group = c.benchmark_group("knn_single_query");
    let x = measurement_rows(40, 50);
    let brute = BruteForceKnn::new(&x);
    let hnsw = HnswIndex::build(&x, HnswParams::default());
    let q = x.row(17).to_vec();
    group.bench_function("brute_1600", |b| b.iter(|| brute.knn(&q, 5)));
    group.bench_function("hnsw_1600", |b| b.iter(|| hnsw.knn(&q, 5)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_knn
}
criterion_main!(benches);
