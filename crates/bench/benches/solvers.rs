//! Ablation bench: Laplacian solver backends on the two graph classes SGL
//! actually solves on — mesh-like originals and near-tree learned graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgl_graph::mst::maximum_spanning_tree;
use sgl_graph::Graph;
use sgl_linalg::{vecops, Rng};
use sgl_solver::{LaplacianSolver, SolverMethod, SolverOptions, TreeSolver};

fn rhs(n: usize) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(1);
    let mut b = rng.normal_vec(n);
    vecops::project_out_mean(&mut b);
    b
}

/// A near-tree graph: MST of a mesh plus 2% extra edges (what SGL learns).
fn near_tree(side: usize) -> Graph {
    let mesh = sgl_datasets::grid2d(side, side);
    let t = maximum_spanning_tree(&mesh);
    let mut g = t.to_graph(&mesh);
    for (count, &i) in t.off_tree_edges().iter().enumerate() {
        if count % 50 == 0 {
            let e = mesh.edge(i);
            g.add_edge(e.u, e.v, e.weight);
        }
    }
    g
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("laplacian_solve_mesh");
    for side in [32usize, 64] {
        let g = sgl_datasets::grid2d(side, side);
        let b = rhs(g.num_nodes());
        for method in [
            SolverMethod::TreePcg,
            SolverMethod::AmgPcg,
            SolverMethod::JacobiPcg,
        ] {
            let solver = LaplacianSolver::new(
                &g,
                SolverOptions {
                    method,
                    ..SolverOptions::default()
                },
            )
            .unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("{method:?}"), side * side),
                &b,
                |bench, b| bench.iter(|| solver.solve(b).unwrap()),
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("laplacian_solve_near_tree");
    for side in [32usize, 64] {
        let g = near_tree(side);
        let b = rhs(g.num_nodes());
        for method in [SolverMethod::TreePcg, SolverMethod::AmgPcg] {
            let solver = LaplacianSolver::new(
                &g,
                SolverOptions {
                    method,
                    ..SolverOptions::default()
                },
            )
            .unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("{method:?}"), side * side),
                &b,
                |bench, b| bench.iter(|| solver.solve(b).unwrap()),
            );
        }
    }
    group.finish();

    // Exact O(N) tree solves as the reference floor.
    let mut group = c.benchmark_group("tree_direct_solve");
    for side in [32usize, 64, 128] {
        let mesh = sgl_datasets::grid2d(side, side);
        let tree = maximum_spanning_tree(&mesh).to_graph(&mesh);
        let solver = TreeSolver::new(&tree);
        let b = rhs(tree.num_nodes());
        group.bench_with_input(BenchmarkId::from_parameter(side * side), &b, |bench, b| {
            bench.iter(|| solver.solve(b))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_backends
}
criterion_main!(benches);
