//! Ablation bench: batched multi-RHS solves ([`SolverHandle::solve_batch`])
//! vs one-at-a-time [`SolverHandle::solve`] loops, across the iterative
//! facade and the dense Cholesky reference backend.
//!
//! The offline companion `bench_solver` binary emits the same comparison
//! as `BENCH_solver.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgl_linalg::{vecops, Rng};
use sgl_solver::{PolicyMethod, SolverPolicy};

fn rhs_batch(n: usize, m: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            let mut b = rng.normal_vec(n);
            vecops::project_out_mean(&mut b);
            b
        })
        .collect()
}

fn bench_solve_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_batch_vs_sequential");
    group.sample_size(10);
    for (method, side, m) in [
        (PolicyMethod::AmgPcg, 32usize, 32usize),
        (PolicyMethod::TreePcg, 32, 32),
        (PolicyMethod::DenseCholesky, 32, 32),
        (PolicyMethod::DenseCholesky, 32, 128),
    ] {
        let g = sgl_datasets::grid2d(side, side);
        let handle = SolverPolicy::default()
            .with_method(method)
            .build_handle(&g)
            .unwrap();
        let rhs = rhs_batch(g.num_nodes(), m, 5);
        group.bench_with_input(
            BenchmarkId::new(format!("{method:?}_batch"), format!("{}x{m}", side * side)),
            &rhs,
            |bench, rhs| bench.iter(|| handle.solve_batch(rhs).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new(
                format!("{method:?}_sequential"),
                format!("{}x{m}", side * side),
            ),
            &rhs,
            |bench, rhs| {
                bench.iter(|| {
                    rhs.iter()
                        .map(|b| handle.solve(b).unwrap())
                        .collect::<Vec<_>>()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_solve_batch
}
criterion_main!(benches);
