//! Ablation bench: LOBPCG (with the preconditioners available) vs
//! shift-invert Lanczos for the embedding eigenpairs of Step 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgl_core::{smallest_nonzero_eigenvalues, spectral_embedding, EmbeddingOptions, SpectrumMethod};
use sgl_graph::laplacian::LaplacianOp;
use sgl_linalg::lobpcg::{lobpcg, LobpcgOptions};
use sgl_solver::{AmgHierarchy, AmgOptions, TreePreconditioner};

fn bench_embedding(c: &mut Criterion) {
    let mut group = c.benchmark_group("embedding_4_eigenpairs");
    group.sample_size(10);
    for side in [32usize, 48] {
        let g = sgl_datasets::grid2d(side, side);
        let n = g.num_nodes();
        let op = LaplacianOp::new(&g);
        let ones = vec![1.0; n];
        // Identical, slightly relaxed settings for both preconditioners:
        // the tree variant needs hundreds of iterations on meshes (that
        // gap is the ablation finding), so give it the room to finish.
        let opts = LobpcgOptions {
            tol: 1e-6,
            max_iter: 5000,
            ..LobpcgOptions::default()
        };

        let amg = AmgHierarchy::build(&g, &AmgOptions::default());
        group.bench_function(BenchmarkId::new("lobpcg_amg", n), |b| {
            b.iter(|| lobpcg(&op, &amg, 4, std::slice::from_ref(&ones), &opts).unwrap())
        });

        let tree = TreePreconditioner::from_graph(&g);
        group.bench_function(BenchmarkId::new("lobpcg_tree", n), |b| {
            b.iter(|| lobpcg(&op, &tree, 4, std::slice::from_ref(&ones), &opts).unwrap())
        });

        group.bench_function(BenchmarkId::new("shift_invert_lanczos", n), |b| {
            b.iter(|| smallest_nonzero_eigenvalues(&g, 4, SpectrumMethod::ShiftInvert).unwrap())
        });

        group.bench_function(BenchmarkId::new("full_embedding_pipeline", n), |b| {
            b.iter(|| spectral_embedding(&g, 4, 0.0, &EmbeddingOptions::default()).unwrap())
        });
    }
    group.finish();

    // The Fig. 2/3 workload: 50 smallest nonzero eigenvalues.
    let mut group = c.benchmark_group("spectrum_50_eigenvalues");
    group.sample_size(10);
    let g = sgl_datasets::grid2d(40, 40);
    group.bench_function("shift_invert_lanczos_1600", |b| {
        b.iter(|| smallest_nonzero_eigenvalues(&g, 50, SpectrumMethod::ShiftInvert).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_embedding
}
criterion_main!(benches);
