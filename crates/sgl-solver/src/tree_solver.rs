//! Exact `O(N)` solver for spanning-tree Laplacian systems.
//!
//! On a tree, `L_T x = b` (with `Σ b = 0`) is solved by two sweeps:
//!
//! 1. **Upward** (leaves → root): the current through the edge `(u,
//!    parent(u))` equals the total injection inside `u`'s subtree, so a
//!    single pass in reverse BFS order accumulates all edge flows.
//! 2. **Downward** (root → leaves): fixing `x_root = 0`, Ohm's law gives
//!    `x_u = x_parent + flow_u / w_u`; a final projection makes the
//!    solution mean-zero.

use sgl_graph::tree::RootedTree;
use sgl_graph::Graph;
use sgl_linalg::vecops;

/// Precomputed tree factorization (just the rooted order — the "numeric"
/// work is done per solve in two linear sweeps).
///
/// # Example
/// ```
/// use sgl_graph::Graph;
/// use sgl_solver::TreeSolver;
/// let tree = Graph::from_edges(3, [(0, 1, 2.0), (1, 2, 1.0)]);
/// let solver = TreeSolver::new(&tree);
/// let x = solver.solve(&[1.0, 0.0, -1.0]);
/// // Current 1 A flows 0 → 2 across conductances 2 and 1.
/// assert!(((x[0] - x[1]) - 0.5).abs() < 1e-12);
/// assert!(((x[1] - x[2]) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct TreeSolver {
    tree: RootedTree,
}

impl TreeSolver {
    /// Build from a connected tree graph.
    ///
    /// # Panics
    /// Panics if `tree` is not a connected tree (see
    /// [`RootedTree::from_tree_graph`]).
    pub fn new(tree: &Graph) -> Self {
        TreeSolver {
            tree: RootedTree::from_tree_graph(tree, 0),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.tree.num_nodes()
    }

    /// Borrow the rooted tree.
    pub fn rooted_tree(&self) -> &RootedTree {
        &self.tree
    }

    /// Solve `L_T x = b` returning the mean-zero solution.
    ///
    /// The right-hand side is projected onto the mean-zero subspace first,
    /// so any `b` is accepted.
    ///
    /// # Panics
    /// Panics if `b.len()` differs from the node count.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.num_nodes()];
        self.solve_into(b, &mut x);
        x
    }

    /// Apply the solve into a caller-provided buffer, allocation-free
    /// (the preconditioner path applies this once per PCG iteration).
    /// Both sweeps run in place: the upward pass turns `out` into edge
    /// currents, and the downward pass overwrites each node's current
    /// with its potential exactly when it is last read (parents precede
    /// children in elimination order).
    pub fn solve_into(&self, b: &[f64], out: &mut [f64]) {
        let n = self.num_nodes();
        assert_eq!(b.len(), n, "tree solve: rhs length mismatch");
        assert_eq!(out.len(), n, "tree solve: output length mismatch");
        out.copy_from_slice(b);
        vecops::project_out_mean(out);
        // Upward sweep: accumulate subtree injection sums into the parent;
        // `out[u]` becomes the current through (u, parent(u)).
        for &u in self.tree.order.iter().rev() {
            let p = self.tree.parent[u];
            if p != u {
                let fu = out[u];
                out[p] += fu;
            }
        }
        // Downward sweep: integrate potentials from the root.
        for &u in &self.tree.order {
            let p = self.tree.parent[u];
            if p != u {
                out[u] = out[p] + out[u] / self.tree.parent_weight[u];
            } else {
                out[u] = 0.0;
            }
        }
        vecops::project_out_mean(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_graph::laplacian::laplacian_csr;
    use sgl_linalg::Rng;

    fn check_solution(tree: &Graph, b: &[f64], x: &[f64], tol: f64) {
        let l = laplacian_csr(tree);
        let lx = l.matvec(x);
        let mut bp = b.to_vec();
        vecops::project_out_mean(&mut bp);
        for i in 0..b.len() {
            assert!(
                (lx[i] - bp[i]).abs() < tol,
                "residual {} at {i}",
                (lx[i] - bp[i]).abs()
            );
        }
        assert!(vecops::mean(x).abs() < tol);
    }

    #[test]
    fn path_tree_exact() {
        let tree = Graph::from_edges(5, (0..4).map(|i| (i, i + 1, (i + 1) as f64)));
        let solver = TreeSolver::new(&tree);
        let mut rng = Rng::seed_from_u64(1);
        let mut b = rng.normal_vec(5);
        vecops::project_out_mean(&mut b);
        let x = solver.solve(&b);
        check_solution(&tree, &b, &x, 1e-12);
    }

    #[test]
    fn star_tree_exact() {
        let tree = Graph::from_edges(6, (1..6).map(|i| (0, i, i as f64)));
        let solver = TreeSolver::new(&tree);
        let b = [5.0, -1.0, -1.0, -1.0, -1.0, -1.0];
        let x = solver.solve(&b);
        check_solution(&tree, &b, &x, 1e-12);
    }

    #[test]
    fn random_tree_exact() {
        // Random recursive tree on 200 nodes.
        let mut rng = Rng::seed_from_u64(7);
        let n = 200;
        let mut edges = Vec::new();
        for v in 1..n {
            let u = rng.below(v);
            edges.push((u, v, 0.1 + rng.uniform() * 10.0));
        }
        let tree = Graph::from_edges(n, edges);
        let solver = TreeSolver::new(&tree);
        let mut b = rng.normal_vec(n);
        vecops::project_out_mean(&mut b);
        let x = solver.solve(&b);
        check_solution(&tree, &b, &x, 1e-9);
    }

    #[test]
    fn unbalanced_rhs_is_projected() {
        let tree = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)]);
        let solver = TreeSolver::new(&tree);
        // Sum is not zero; solver should project.
        let x = solver.solve(&[3.0, 0.0, 0.0]);
        check_solution(&tree, &[3.0, 0.0, 0.0], &x, 1e-12);
    }

    #[test]
    fn two_node_ohms_law() {
        let tree = Graph::from_edges(2, [(0, 1, 4.0)]);
        let solver = TreeSolver::new(&tree);
        let x = solver.solve(&[1.0, -1.0]);
        assert!(((x[0] - x[1]) - 0.25).abs() < 1e-14);
    }
}
