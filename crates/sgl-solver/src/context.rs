//! [`SolverContext`] — a session-owned cache of the current graph
//! revision's [`SolverHandle`], with an *incremental revision* path for
//! small edge deltas.
//!
//! The SGL loop mutates its learned graph between iterations but solves
//! against a *fixed* graph many times within one iteration (edge
//! scaling, shift-invert embedding, resistance sketching). The context
//! captures exactly that lifecycle: stages call
//! [`handle_for`](SolverContext::handle_for) and share one prepared
//! handle; the owner reports every graph change — either as an explicit
//! low-rank delta through [`apply_deltas`](SolverContext::apply_deltas)
//! / [`apply_scale`](SolverContext::apply_scale), or wholesale through
//! [`invalidate`](SolverContext::invalidate).
//!
//! # The incremental revision model
//!
//! Algorithm 1 adds only `⌈Nβ⌉` edges per iteration, so consecutive
//! graph revisions differ by a *low-rank* Laplacian update
//! `L' = L + B W Bᵀ`. Instead of refactoring (tree / IC(0) / AMG
//! hierarchy / dense Cholesky) from scratch, `apply_deltas` keeps the
//! existing base handle and wraps it in a
//! [`WoodburyUpdate`] correction: the corrected
//! base is a near-exact inverse of the updated operator, and each solve
//! runs a short PCG against the *true* updated Laplacian with that
//! correction as the preconditioner — so results still meet the
//! policy's `rtol` against the current graph, at the cost of
//! `O(solve + rank·N)` instead of `O(setup + solve)`. A uniform
//! rescale (Step 5) is even cheaper: `(c·L)⁺ = L⁺/c` needs no new
//! factorization at all.
//!
//! Two triggers force a full refactorization
//! ([`SolverPolicy::max_delta_rank`] and
//! [`SolverPolicy::refresh_iter_factor`]): the accumulated delta rank
//! exceeding its cap, and the corrected solve's outer PCG iteration
//! count blowing up past `refresh_iter_factor ×` its post-build
//! baseline (the stale factorization has drifted too far). Numerical
//! breakdown of the correction (singular capacitance, vanishing merged
//! weight) refreshes as well, so the incremental path never serves an
//! unreliable handle. [`revision_stats`](SolverContext::revision_stats)
//! reports how many full builds, incremental updates, and forced
//! refreshes a context performed — the observable cost of the policy.
//!
//! Change detection is `O(1)`: every [`Graph`] mutation moves it to a
//! fresh process-unique [`Graph::revision`], and the context compares
//! epochs instead of rehashing the edge list (the structural fingerprint
//! survives as a debug assertion only).

use crate::backend::{
    PolicyMethod, ReuseMode, SolveStats, SolverBackend, SolverHandle, SolverPolicy, StatCell,
};
use crate::fault::{FaultKind, FaultPlan};
use sgl_graph::laplacian::{apply_laplacian_deltas, laplacian_csr};
use sgl_graph::{EdgeDelta, Graph};
use sgl_linalg::cg::{pcg_solve_with, CgOptions, CgWorkspace};
use sgl_linalg::{par, vecops, CsrMatrix, LinalgError, Preconditioner, WoodburyUpdate};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Lifetime counters of a [`SolverContext`]'s revision machinery: how
/// often it paid for a full factorization versus an incremental
/// correction, and what forced the refreshes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RevisionStats {
    /// Full handle builds (factorizations from scratch).
    pub handles_built: usize,
    /// Delta batches absorbed incrementally (Woodbury wraps + scale
    /// wraps) instead of refactoring.
    pub delta_updates: usize,
    /// Total delta-edge columns absorbed incrementally over the
    /// context's lifetime.
    pub delta_rank_applied: usize,
    /// Full refreshes forced by the accumulated rank exceeding
    /// [`SolverPolicy::max_delta_rank`].
    pub refreshes_on_rank: usize,
    /// Full refreshes forced by corrected-solve PCG iterations exceeding
    /// [`SolverPolicy::refresh_iter_factor`] × the post-build baseline.
    pub refreshes_on_iters: usize,
    /// Full refreshes forced by numerical breakdown of the correction
    /// (singular capacitance, vanishing merged weight, failed base
    /// solve).
    pub refreshes_on_numeric: usize,
    /// Preconditioner downgrades taken by the degradation ladder
    /// (IC(0)/AMG → tree → Jacobi) after a build breakdown.
    pub precond_downgrades: usize,
}

impl RevisionStats {
    /// Fold another context's counters into this one.
    pub fn absorb(&mut self, other: &RevisionStats) {
        self.handles_built += other.handles_built;
        self.delta_updates += other.delta_updates;
        self.delta_rank_applied += other.delta_rank_applied;
        self.refreshes_on_rank += other.refreshes_on_rank;
        self.refreshes_on_iters += other.refreshes_on_iters;
        self.refreshes_on_numeric += other.refreshes_on_numeric;
        self.precond_downgrades += other.precond_downgrades;
    }
}

/// The accumulated low-rank state between two full factorizations.
struct DeltaState {
    /// Distinct delta edges since the last full build.
    edges: Vec<(usize, usize)>,
    /// Accumulated signed weight change per delta edge.
    weights: Vec<f64>,
    /// Base solutions `(c·L₀)⁺ b_e`, aligned with `edges`.
    z_rows: Vec<Vec<f64>>,
    /// Edge → index in the three vectors above, for merging.
    index: HashMap<(usize, usize), usize>,
    /// Uniform factor applied to the base operator since the build
    /// (`apply_scale` products; 1 when never scaled).
    base_scale: f64,
    /// Set by the revision handle when its outer PCG blows up.
    needs_refresh: Arc<AtomicBool>,
    /// Outer iterations of the first corrected solve after the build
    /// (0 = not yet recorded).
    baseline_iters: Arc<AtomicUsize>,
}

impl DeltaState {
    fn fresh() -> Self {
        DeltaState {
            edges: Vec::new(),
            weights: Vec::new(),
            z_rows: Vec::new(),
            index: HashMap::new(),
            base_scale: 1.0,
            needs_refresh: Arc::new(AtomicBool::new(false)),
            baseline_iters: Arc::new(AtomicUsize::new(0)),
        }
    }

    fn rank(&self) -> usize {
        self.edges.len()
    }
}

/// Revision-tracked solver cache driven by a [`SolverPolicy`] (see the
/// [module docs](self) for the incremental revision model).
pub struct SolverContext {
    policy: SolverPolicy,
    backend: Box<dyn SolverBackend>,
    /// The handle served to callers: the base itself, or a revision
    /// wrapper around it.
    handle: Option<Arc<dyn SolverHandle>>,
    /// The fully factored handle behind `handle` (identical to it when
    /// no delta has been absorbed).
    base: Option<Arc<dyn SolverHandle>>,
    delta: Option<DeltaState>,
    /// Laplacian CSR of the current revision, maintained incrementally
    /// while the delta path is active (the outer-PCG operator).
    lap: Option<Arc<CsrMatrix>>,
    /// [`Graph::revision`] the served handle was prepared for (`0` =
    /// none yet).
    revision: u64,
    stale: bool,
    stats: RevisionStats,
    /// Fingerprint of the graph the cached handle was built for — the
    /// revision counter's debug-mode witness.
    #[cfg(debug_assertions)]
    fingerprint: u64,
    /// Stats accumulated from handles of *previous* revisions (retired
    /// on rebuild), so the context can report lifetime totals.
    retired_stats: SolveStats,
    /// Deterministic fault-injection schedule, if any (see
    /// [`FaultPlan`]). `None` in production: zero overhead.
    faults: Option<Arc<FaultPlan>>,
}

/// Cheap structural fingerprint (FNV-1a over the edge list). Since the
/// [`Graph::revision`] epoch took over change detection this only backs
/// the `debug_assert` that a served handle matches the graph bit for bit
/// — the O(nnz) hash is never computed in release builds.
#[cfg(debug_assertions)]
fn graph_fingerprint(graph: &Graph) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(PRIME);
    };
    mix(graph.num_nodes() as u64);
    mix(graph.num_edges() as u64);
    for e in graph.edges() {
        mix(e.u as u64);
        mix(e.v as u64);
        mix(e.weight.to_bits());
    }
    h
}

impl std::fmt::Debug for SolverContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverContext")
            .field("policy", &self.policy)
            .field("backend", &self.backend.name())
            .field("cached", &self.handle.is_some())
            .field("stale", &self.stale)
            .field(
                "delta_rank",
                &self.delta.as_ref().map_or(0, DeltaState::rank),
            )
            .field("stats", &self.stats)
            .finish()
    }
}

/// Mirror a scheduled refactorization into the trace/metrics registry
/// (labelled instant event + unified counter). No-op while the recorder
/// is disabled.
fn note_refresh(kind: &'static str) {
    sgl_trace::count("solver.refreshes", 1);
    sgl_trace::trace_event!("handle_refresh", label = kind);
}

impl SolverContext {
    /// Create a context for the given policy.
    pub fn new(policy: SolverPolicy) -> Self {
        let backend = policy.backend();
        SolverContext {
            policy,
            backend,
            handle: None,
            base: None,
            delta: None,
            lap: None,
            revision: 0,
            stale: false,
            stats: RevisionStats::default(),
            #[cfg(debug_assertions)]
            fingerprint: 0,
            retired_stats: SolveStats::default(),
            faults: None,
        }
    }

    /// The policy driving this context.
    pub fn policy(&self) -> &SolverPolicy {
        &self.policy
    }

    /// Install a deterministic fault-injection schedule. Every
    /// subsequent handle build, solve through a context-built handle,
    /// and Woodbury correction consults the plan at its opportunity
    /// site. Installing a plan invalidates the cache so already-built
    /// handles don't bypass injection.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
        self.stale = true;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Mark the cached handle stale (the graph changed in a way the
    /// incremental path cannot express — topology removal, bulk edits);
    /// the next [`handle_for`](SolverContext::handle_for) refactors from
    /// scratch. For low-rank changes prefer
    /// [`apply_deltas`](SolverContext::apply_deltas) /
    /// [`apply_scale`](SolverContext::apply_scale), which keep the
    /// existing factorization alive.
    pub fn invalidate(&mut self) {
        self.stale = true;
    }

    /// Whether the corrected handle has flagged itself for refresh
    /// (outer PCG iteration blow-up).
    fn iter_flagged(&self) -> bool {
        self.delta
            .as_ref()
            .is_some_and(|d| d.needs_refresh.load(Ordering::Relaxed))
    }

    /// Retire every cached handle's counters into the lifetime totals
    /// and drop the cache.
    fn retire_current(&mut self) {
        if let Some(h) = self.handle.take() {
            self.retired_stats.absorb(&h.stats());
            if let Some(b) = self.base.take() {
                if !Arc::ptr_eq(&h, &b) {
                    self.retired_stats.absorb(&b.stats());
                }
            }
        } else if let Some(b) = self.base.take() {
            self.retired_stats.absorb(&b.stats());
        }
        self.delta = None;
        self.lap = None;
    }

    /// The handle for the current graph revision: built from scratch on
    /// first use, served from cache while the [`Graph::revision`] epoch
    /// matches (an `O(1)` check — a mutated graph can never be silently
    /// served a stale handle), and refactored after
    /// [`invalidate`](SolverContext::invalidate), a pending refresh
    /// trigger, or under [`ReuseMode::PerCall`]. Revisions absorbed via
    /// [`apply_deltas`](SolverContext::apply_deltas) /
    /// [`apply_scale`](SolverContext::apply_scale) are served as
    /// corrected wrappers around the cached base factorization.
    ///
    /// # Errors
    /// Propagates [`SolverBackend::build`] failures; the stale cache is
    /// dropped either way.
    pub fn handle_for(&mut self, graph: &Graph) -> Result<Arc<dyn SolverHandle>, LinalgError> {
        let iter_flagged = self.iter_flagged();
        let rebuild = self.handle.is_none()
            || self.stale
            || iter_flagged
            || self.revision == 0
            || graph.revision() != self.revision
            || self.policy.reuse == ReuseMode::PerCall;
        if rebuild {
            if iter_flagged {
                self.stats.refreshes_on_iters += 1;
                note_refresh("iters");
            }
            self.retire_current();
            let handle = {
                let _sp = sgl_trace::span!("handle_build", count = graph.num_nodes());
                self.build_with_degradation(graph)?
            };
            self.stats.handles_built += 1;
            sgl_trace::count("solver.handles_built", 1);
            self.stale = false;
            self.revision = graph.revision();
            #[cfg(debug_assertions)]
            {
                self.fingerprint = graph_fingerprint(graph);
            }
            self.base = Some(Arc::clone(&handle));
            self.handle = Some(handle);
        } else {
            // The epoch matched: in debug builds, prove the content did
            // too (the counter's contract: equal revisions ⇒ equal
            // graphs).
            #[cfg(debug_assertions)]
            debug_assert_eq!(
                graph_fingerprint(graph),
                self.fingerprint,
                "graph revision matched but content differs — revision contract violated"
            );
        }
        Ok(Arc::clone(self.handle.as_ref().expect("handle just built")))
    }

    /// Build a handle for `graph`, walking the preconditioner
    /// degradation ladder on breakdown: a failed IC(0)/AMG build (real,
    /// or injected via [`FaultKind::IcholBreakdown`]) downgrades to a
    /// spanning-tree preconditioner, then to Jacobi — each successful
    /// downgrade counted in [`RevisionStats::precond_downgrades`]. The
    /// dense reference backend deliberately has no ladder (its size-cap
    /// failure is a configuration contract, not a numerical breakdown).
    /// When a plan schedules [`FaultKind::PcgStagnation`], the built
    /// handle is wrapped so solves consult the plan.
    fn build_with_degradation(
        &mut self,
        graph: &Graph,
    ) -> Result<Arc<dyn SolverHandle>, LinalgError> {
        let injected = self
            .faults
            .as_ref()
            .is_some_and(|p| p.should_fire(FaultKind::IcholBreakdown));
        let primary = if injected {
            Err(FaultPlan::error_for(FaultKind::IcholBreakdown))
        } else {
            self.backend.build(graph)
        };
        let built = match primary {
            Ok(h) => Ok(h),
            Err(err) => {
                let mut recovered = Err(err);
                for &method in downgrade_ladder(self.policy.method) {
                    let fallback = self.policy.clone().with_method(method);
                    if let Ok(h) = fallback.backend().build(graph) {
                        self.stats.precond_downgrades += 1;
                        sgl_trace::count("solver.precond_downgrades", 1);
                        sgl_trace::trace_event!("precond_downgrade", label = method.name());
                        recovered = Ok(h);
                        break;
                    }
                }
                recovered
            }
        }?;
        Ok(match &self.faults {
            Some(plan) if plan.plans(FaultKind::PcgStagnation) => Arc::new(FaultInjectedHandle {
                inner: built,
                plan: Arc::clone(plan),
            }),
            _ => built,
        })
    }

    /// Absorb a low-rank edge delta into the cached factorization
    /// instead of refactoring: call **after** mutating the graph, with
    /// the post-mutation graph and the batch of weight changes just
    /// applied (insertions at `+w`, reweights at `w' − w`). The next
    /// [`handle_for`](SolverContext::handle_for) then serves a corrected
    /// handle — the cached base plus a [`WoodburyUpdate`] over the
    /// accumulated delta edges — that still solves to the policy's
    /// `rtol` against the *updated* operator.
    ///
    /// Falls back to scheduling a full refactorization (exactly the
    /// [`invalidate`](SolverContext::invalidate) behavior) whenever the
    /// incremental path is off (`max_delta_rank == 0`,
    /// [`ReuseMode::PerCall`]), nothing usable is cached, the
    /// accumulated rank would exceed the cap, a refresh was already
    /// pending, or the correction breaks down numerically. Never
    /// errors on those — the fallback is always available; only base
    /// `solve_batch` failures with no fallback semantics propagate.
    ///
    /// # Errors
    /// Currently never returns `Err`: every failure path falls back to
    /// the full-refactorization schedule. The `Result` keeps room for
    /// future strict modes.
    pub fn apply_deltas(&mut self, graph: &Graph, deltas: &[EdgeDelta]) -> Result<(), LinalgError> {
        let _sp = sgl_trace::span!("delta_update", count = deltas.len());
        if deltas.is_empty() {
            if self.revision != 0 && graph.revision() != self.revision {
                // The graph moved but the caller reported no delta:
                // nothing to absorb, refactor.
                self.stale = true;
            }
            return Ok(());
        }
        if self.handle.is_none()
            || self.stale
            || self.revision == 0
            || self.policy.max_delta_rank == 0
            || self.policy.reuse == ReuseMode::PerCall
        {
            self.stale = true;
            return Ok(());
        }
        if self.iter_flagged() {
            self.stats.refreshes_on_iters += 1;
            note_refresh("iters");
            // Drop the flagged state so the refresh is counted once
            // (handle_for would otherwise see the flag again).
            self.delta = None;
            self.stale = true;
            return Ok(());
        }
        let base = Arc::clone(self.base.as_ref().expect("cached handle implies base"));
        let n = base.num_nodes();
        for d in deltas {
            if d.u >= n || d.v >= n || d.u == d.v || !d.dweight.is_finite() {
                self.stale = true;
                self.stats.refreshes_on_numeric += 1;
                note_refresh("numeric");
                return Ok(());
            }
        }

        // Merge the batch into the accumulated delta set.
        let mut state = self.delta.take().unwrap_or_else(DeltaState::fresh);
        let mut new_edges: Vec<(usize, usize)> = Vec::new();
        let new_rank_added;
        {
            let mut merged: HashMap<(usize, usize), f64> = HashMap::new();
            for d in deltas {
                let key = (d.u.min(d.v), d.u.max(d.v));
                *merged.entry(key).or_insert(0.0) += d.dweight;
            }
            // Deterministic order: sort the new keys.
            let mut keys: Vec<_> = merged.keys().copied().collect();
            keys.sort_unstable();
            for key in keys {
                let dw = merged[&key];
                match state.index.get(&key) {
                    Some(&i) => state.weights[i] += dw,
                    None => new_edges.push(key),
                }
            }
            new_rank_added = new_edges.len();
            let rank_after = state.rank() + new_edges.len();
            if rank_after > self.policy.max_delta_rank {
                self.stats.refreshes_on_rank += 1;
                note_refresh("rank");
                self.stale = true;
                return Ok(());
            }
            // In Woodbury mode (direct base, no standalone
            // preconditioner) every new incidence column needs its base
            // solution, fetched in one batched call through the *base*
            // factorization. In stale-preconditioner mode the setup is
            // reused as-is and no extra solves are paid at all.
            if !new_edges.is_empty() {
                let zs = if base.stale_preconditioner().is_some() {
                    vec![Vec::new(); new_edges.len()]
                } else {
                    let rhs: Vec<Vec<f64>> = new_edges
                        .iter()
                        .map(|&(u, v)| {
                            let mut b = vec![0.0; n];
                            b[u] = 1.0;
                            b[v] = -1.0;
                            b
                        })
                        .collect();
                    match base.solve_batch(&rhs) {
                        Ok(zs) => zs,
                        Err(_) => {
                            self.stats.refreshes_on_numeric += 1;
                            note_refresh("numeric");
                            self.stale = true;
                            return Ok(());
                        }
                    }
                };
                for (&(u, v), mut z) in new_edges.iter().zip(zs) {
                    if state.base_scale != 1.0 {
                        let inv = 1.0 / state.base_scale;
                        for x in &mut z {
                            *x *= inv;
                        }
                    }
                    state.index.insert((u, v), state.edges.len());
                    state.edges.push((u, v));
                    state.weights.push(merged[&(u, v)]);
                    state.z_rows.push(z);
                }
            }
        }
        // Drop deltas whose merged weight vanished (a perfect undo):
        // they would make W⁻¹ singular while contributing nothing.
        if state.weights.iter().any(|w| w.abs() < 1e-300) {
            let mut kept = DeltaState::fresh();
            kept.base_scale = state.base_scale;
            kept.needs_refresh = Arc::clone(&state.needs_refresh);
            kept.baseline_iters = Arc::clone(&state.baseline_iters);
            for i in 0..state.edges.len() {
                if state.weights[i].abs() >= 1e-300 {
                    kept.index.insert(state.edges[i], kept.edges.len());
                    kept.edges.push(state.edges[i]);
                    kept.weights.push(state.weights[i]);
                    kept.z_rows.push(std::mem::take(&mut state.z_rows[i]));
                }
            }
            state = kept;
        }

        // Maintain the updated-operator CSR incrementally; a pattern
        // miss (genuinely new edge) rebuilds it from the graph. Retire
        // the outgoing wrapper first — it shares this Arc, and dropping
        // it makes the in-place patch genuinely in place instead of a
        // copy-on-write of the whole matrix.
        self.retire_wrapper();
        let lap = match self.lap.take() {
            Some(mut lap) => {
                if apply_laplacian_deltas(Arc::make_mut(&mut lap), deltas) {
                    lap
                } else {
                    Arc::new(laplacian_csr(graph))
                }
            }
            None => Arc::new(laplacian_csr(graph)),
        };

        let correction = match self.correction_for(&base, &state) {
            Some(c) => c,
            None => {
                self.stats.refreshes_on_numeric += 1;
                note_refresh("numeric");
                self.stale = true;
                return Ok(());
            }
        };
        self.stats.delta_rank_applied += new_rank_added;
        sgl_trace::count("solver.delta_updates", 1);
        sgl_trace::count("solver.delta_rank_applied", new_rank_added as u64);
        self.finish_wrap(graph, state, lap, correction);
        Ok(())
    }

    /// Pick the correction mode for the accumulated delta state:
    /// nothing at rank 0 (pure rescale / perfect cancellation), the
    /// base's own stale preconditioner for iterative bases (their setup
    /// keeps working on the updated operator, zero extra cost), or a
    /// Woodbury-corrected base solve for direct bases. `None` = the
    /// correction broke down numerically; refactor.
    fn correction_for(
        &self,
        base: &Arc<dyn SolverHandle>,
        state: &DeltaState,
    ) -> Option<Correction> {
        if state.rank() == 0 {
            return Some(Correction::Exact);
        }
        if let Some(precond) = base.stale_preconditioner() {
            return Some(Correction::StalePrecond(precond));
        }
        // Injected capacitance singularity: pretend the update broke
        // down so the refreshes_on_numeric recovery path runs.
        if self
            .faults
            .as_ref()
            .is_some_and(|p| p.should_fire(FaultKind::WoodburySingular))
        {
            return None;
        }
        match WoodburyUpdate::new(
            base.num_nodes(),
            state.edges.clone(),
            state.weights.clone(),
            &state.z_rows,
        ) {
            Ok(u) => Some(Correction::Woodbury(u)),
            Err(_) => None,
        }
    }

    /// Absorb a uniform weight rescale (`w_e ← factor · w_e` for every
    /// edge, Step 5 of Algorithm 1) into the cached factorization:
    /// `(c·L)⁺ = L⁺ / c`, so the corrected handle needs no new solves at
    /// all. Call **after** `Graph::scale_weights`, with the post-scale
    /// graph. Falls back to scheduling a refactorization exactly like
    /// [`apply_deltas`](SolverContext::apply_deltas) when nothing usable
    /// is cached or the incremental path is off.
    ///
    /// # Panics
    /// Panics if `factor` is not positive and finite (the same contract
    /// as `Graph::scale_weights`).
    pub fn apply_scale(&mut self, graph: &Graph, factor: f64) {
        let _sp = sgl_trace::span!("scale_update", value = factor);
        assert!(
            factor > 0.0 && factor.is_finite(),
            "scale factor must be positive and finite"
        );
        if self.handle.is_none()
            || self.stale
            || self.revision == 0
            || self.policy.max_delta_rank == 0
            || self.policy.reuse == ReuseMode::PerCall
        {
            self.stale = true;
            return;
        }
        if self.iter_flagged() {
            self.stats.refreshes_on_iters += 1;
            note_refresh("iters");
            // Count the refresh once; handle_for must not see the flag
            // again.
            self.delta = None;
            self.stale = true;
            return;
        }
        let mut state = self.delta.take().unwrap_or_else(DeltaState::fresh);
        state.base_scale *= factor;
        // The accumulated delta edges were scaled along with the rest of
        // the graph; their base solutions shrink by the same factor.
        let inv = 1.0 / factor;
        for w in &mut state.weights {
            *w *= factor;
        }
        for z in &mut state.z_rows {
            for x in z.iter_mut() {
                *x *= inv;
            }
        }
        // As in `apply_deltas`: drop the outgoing wrapper before
        // mutating the shared CSR so the rescale stays in place.
        self.retire_wrapper();
        let lap = match self.lap.take() {
            Some(mut lap) => {
                Arc::make_mut(&mut lap).scale_values(factor);
                lap
            }
            None => Arc::new(laplacian_csr(graph)),
        };
        let base = Arc::clone(self.base.as_ref().expect("cached handle implies base"));
        let correction = match self.correction_for(&base, &state) {
            Some(c) => c,
            None => {
                self.stats.refreshes_on_numeric += 1;
                self.stale = true;
                return;
            }
        };
        self.finish_wrap(graph, state, lap, correction);
    }

    /// Retire the served wrapper's counters and drop it, keeping the
    /// base factorization (and its stats accounting) alive. No-op when
    /// the served handle *is* the base.
    fn retire_wrapper(&mut self) {
        if let Some(old) = self.handle.take() {
            match &self.base {
                Some(b) if Arc::ptr_eq(&old, b) => {}
                _ => self.retired_stats.absorb(&old.stats()),
            }
        }
    }

    /// Install the corrected wrapper for the (post-mutation) graph.
    fn finish_wrap(
        &mut self,
        graph: &Graph,
        state: DeltaState,
        lap: Arc<CsrMatrix>,
        correction: Correction,
    ) {
        let base = Arc::clone(self.base.as_ref().expect("cached handle implies base"));
        // Retire any wrapper still being served (callers usually already
        // did this before mutating the shared CSR).
        self.retire_wrapper();
        let exact = matches!(correction, Correction::Exact);
        let wrapper: Arc<dyn SolverHandle> = if exact && state.base_scale == 1.0 {
            // No correction left at all: the base itself is current.
            Arc::clone(&base)
        } else {
            Arc::new(RevisionedHandle {
                num_nodes: base.num_nodes(),
                base,
                correction,
                inv_scale: 1.0 / state.base_scale,
                op: Arc::clone(&lap),
                rtol: self.policy.rtol,
                max_iter: self.policy.max_iter,
                parallelism: self.policy.parallelism,
                refresh_iter_factor: self.policy.refresh_iter_factor,
                baseline_iters: Arc::clone(&state.baseline_iters),
                needs_refresh: Arc::clone(&state.needs_refresh),
                stats: StatCell::default(),
            })
        };
        self.stats.delta_updates += 1;
        self.handle = Some(wrapper);
        self.delta = Some(state);
        self.lap = Some(lap);
        self.revision = graph.revision();
        #[cfg(debug_assertions)]
        {
            self.fingerprint = graph_fingerprint(graph);
        }
    }

    /// The cached handle, if any (no build is triggered).
    pub fn current_handle(&self) -> Option<&Arc<dyn SolverHandle>> {
        self.handle.as_ref()
    }

    /// A clone of the cached handle's `Arc`, if any — shared, read-only
    /// access for concurrent readers (handles are `Send + Sync`). The
    /// clone keeps serving the revision it was built for even after the
    /// context absorbs further deltas: in-place operator patches
    /// copy-on-write when a reader still holds the operator, so a
    /// published handle never changes under its holder.
    pub fn shared_handle(&self) -> Option<Arc<dyn SolverHandle>> {
        self.handle.clone()
    }

    /// How many handles this context has built from scratch — the
    /// observable cost of the reuse policy (and the witness that a
    /// solver-free pipeline never built one). Incremental revisions
    /// absorbed by [`apply_deltas`](SolverContext::apply_deltas) do
    /// **not** count; see
    /// [`revision_stats`](SolverContext::revision_stats) for the full
    /// breakdown.
    pub fn handles_built(&self) -> usize {
        self.stats.handles_built
    }

    /// Accumulated delta rank currently riding on the cached base
    /// factorization (0 when the base is exact for the served
    /// revision).
    pub fn delta_rank(&self) -> usize {
        self.delta.as_ref().map_or(0, DeltaState::rank)
    }

    /// Lifetime revision counters: full builds, incremental updates,
    /// and what forced each refresh.
    pub fn revision_stats(&self) -> RevisionStats {
        self.stats
    }

    /// Lifetime solve statistics: every retired revision's counters plus
    /// the current handles' (zeros if no handle was ever built). While a
    /// corrected wrapper is active this includes the base
    /// factorization's preconditioner solves — the true total work.
    pub fn cumulative_stats(&self) -> SolveStats {
        let mut total = self.retired_stats;
        match (&self.handle, &self.base) {
            (Some(h), Some(b)) => {
                total.absorb(&h.stats());
                if !Arc::ptr_eq(h, b) {
                    total.absorb(&b.stats());
                }
            }
            (Some(h), None) => total.absorb(&h.stats()),
            (None, Some(b)) => total.absorb(&b.stats()),
            (None, None) => {}
        }
        total
    }
}

/// The degradation ladder: which methods to fall back to, in order,
/// when a build breaks down. Strictly toward cheaper, more robust
/// setups — Jacobi cannot break down on a connected Laplacian. Dense
/// Cholesky is excluded on purpose: its failure mode is the
/// `dense_max_nodes` configuration cap, which must surface, not
/// degrade.
fn downgrade_ladder(method: PolicyMethod) -> &'static [PolicyMethod] {
    match method {
        PolicyMethod::Auto | PolicyMethod::IcholPcg | PolicyMethod::AmgPcg => {
            &[PolicyMethod::TreePcg, PolicyMethod::JacobiPcg]
        }
        PolicyMethod::TreePcg | PolicyMethod::TreeDirect => &[PolicyMethod::JacobiPcg],
        _ => &[],
    }
}

/// A [`SolverHandle`] wrapper that consults a [`FaultPlan`] before
/// delegating: one [`FaultKind::PcgStagnation`] opportunity per
/// `solve`/`solve_batch` call, checked on the serial control path
/// before any parallel dispatch (thread-count invariant). Stats pass
/// straight through to the wrapped handle.
struct FaultInjectedHandle {
    inner: Arc<dyn SolverHandle>,
    plan: Arc<FaultPlan>,
}

impl SolverHandle for FaultInjectedHandle {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn method_name(&self) -> &'static str {
        self.inner.method_name()
    }

    fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.plan.should_fire(FaultKind::PcgStagnation) {
            return Err(FaultPlan::error_for(FaultKind::PcgStagnation));
        }
        self.inner.solve(b)
    }

    fn solve_batch(&self, rhs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, LinalgError> {
        if self.plan.should_fire(FaultKind::PcgStagnation) {
            return Err(FaultPlan::error_for(FaultKind::PcgStagnation));
        }
        self.inner.solve_batch(rhs)
    }

    fn stats(&self) -> SolveStats {
        self.inner.stats()
    }

    fn stale_preconditioner(&self) -> Option<Arc<dyn Preconditioner + Send + Sync>> {
        self.inner.stale_preconditioner()
    }
}

// ---------------------------------------------------------------------------
// RevisionedHandle: the corrected wrapper served between refactorizations.
// ---------------------------------------------------------------------------

/// How a [`RevisionedHandle`] bridges the gap between the stale base
/// factorization and the current operator.
enum Correction {
    /// No gap beyond a uniform rescale: `(c·L)⁺ b = L⁺ b / c`, exact,
    /// no outer iteration at all.
    Exact,
    /// Iterative base: its prepared preconditioner (tree / IC(0) / AMG
    /// V-cycle / Jacobi) still preconditions the *updated* operator
    /// well — run PCG against the new Laplacian with the stale setup.
    /// Zero preparation cost per revision.
    StalePrecond(Arc<dyn Preconditioner + Send + Sync>),
    /// Direct base (exact tree solve, dense Cholesky): the
    /// Woodbury-corrected base solve is a near-exact inverse of the
    /// updated operator, so the outer PCG settles in a couple of
    /// iterations. Costs one batched base solve per new delta edge at
    /// preparation.
    Woodbury(WoodburyUpdate),
}

/// A [`SolverHandle`] for graph revision `L' = c·(L₀ + B W Bᵀ)` served
/// without refactoring (see [`Correction`] for the modes): every solve
/// runs against the *true* updated operator, so results still meet the
/// policy `rtol` on the current graph.
struct RevisionedHandle {
    base: Arc<dyn SolverHandle>,
    correction: Correction,
    /// `1 / c` for the accumulated uniform rescale `c`.
    inv_scale: f64,
    /// The updated operator (current revision's Laplacian).
    op: Arc<CsrMatrix>,
    rtol: f64,
    max_iter: usize,
    parallelism: usize,
    refresh_iter_factor: f64,
    baseline_iters: Arc<AtomicUsize>,
    needs_refresh: Arc<AtomicBool>,
    stats: StatCell,
    num_nodes: usize,
}

impl RevisionedHandle {
    /// Woodbury-mode preconditioner application: `M⁻¹ r = (1/c) ·
    /// correct(base_solve(r))` — a near-exact inverse of the updated
    /// operator. Base-solve failures land in `error` (the PCG keeps its
    /// infallible signature by seeing zeros) and surface after the
    /// solve.
    fn precondition_via_base(
        &self,
        update: &WoodburyUpdate,
        r: &[f64],
        z: &mut [f64],
        error: &RefCell<Option<LinalgError>>,
    ) {
        if error.borrow().is_some() {
            z.fill(0.0);
            return;
        }
        match self.base.solve(r) {
            Ok(mut y) => {
                update.correct(&mut y);
                if self.inv_scale != 1.0 {
                    for x in &mut y {
                        *x *= self.inv_scale;
                    }
                }
                z.copy_from_slice(&y);
                vecops::project_out_mean(z);
            }
            Err(e) => {
                *error.borrow_mut() = Some(e);
                z.fill(0.0);
            }
        }
    }

    /// Refresh policy: the first corrected solve after a build sets the
    /// baseline; later solves exceeding `refresh_iter_factor ×` baseline
    /// flag the context for a refactorization.
    ///
    /// Called only from the serial accounting paths (`solve`, and
    /// `solve_batch` *after* the join, in RHS order) — never from inside
    /// the parallel region — so the baseline and the refresh decision
    /// are identical at every thread count.
    fn watch_iterations(&self, iterations: usize) {
        if matches!(self.correction, Correction::Exact) {
            return;
        }
        let iters = iterations.max(1);
        let baseline = self.baseline_iters.load(Ordering::Relaxed);
        if baseline == 0 {
            self.baseline_iters.store(iters, Ordering::Relaxed);
        } else if self.refresh_iter_factor >= 1.0
            && iters as f64 > self.refresh_iter_factor * baseline as f64
        {
            self.needs_refresh.store(true, Ordering::Relaxed);
        }
    }

    fn solve_into(
        &self,
        b: &[f64],
        x: &mut [f64],
        ws: &mut CgWorkspace,
    ) -> Result<(usize, f64), LinalgError> {
        if b.len() != self.num_nodes {
            return Err(LinalgError::DimensionMismatch {
                context: "laplacian solve rhs",
                expected: self.num_nodes,
                actual: b.len(),
            });
        }
        let opts = CgOptions {
            rtol: self.rtol,
            max_iter: self.max_iter,
            project_mean: true,
            project_apply_input: true,
            ..CgOptions::default()
        };
        match &self.correction {
            Correction::Exact => {
                // Pure rescale: exact, no outer iteration.
                let y = self.base.solve(b)?;
                for (xi, yi) in x.iter_mut().zip(&y) {
                    *xi = yi * self.inv_scale;
                }
                Ok((0, self.base.stats().last_relative_residual))
            }
            Correction::StalePrecond(precond) => {
                // The base's own setup preconditions the updated
                // operator (PCG is invariant to preconditioner scaling,
                // so the rescale needs no adjustment here).
                let st = pcg_solve_with(self.op.as_ref(), &precond.as_ref(), b, &opts, ws, x)?;
                vecops::project_out_mean(x);
                Ok((st.iterations, st.relative_residual))
            }
            Correction::Woodbury(update) => {
                let error: RefCell<Option<LinalgError>> = RefCell::new(None);
                let precond = FnPrecond(|r: &[f64], z: &mut [f64]| {
                    self.precondition_via_base(update, r, z, &error)
                });
                let st = pcg_solve_with(self.op.as_ref(), &precond, b, &opts, ws, x);
                if let Some(e) = error.borrow_mut().take() {
                    return Err(e);
                }
                let st = st?;
                vecops::project_out_mean(x);
                Ok((st.iterations, st.relative_residual))
            }
        }
    }

    /// Whether this wrapper adds its own solve on top of the base's
    /// (`Exact` solves delegate 1:1 to the base, which already records
    /// them — recording here too would double-count).
    fn records_own_stats(&self) -> bool {
        !matches!(self.correction, Correction::Exact)
    }
}

/// Closure adapter for the [`Preconditioner`] trait.
struct FnPrecond<F: Fn(&[f64], &mut [f64])>(F);

impl<F: Fn(&[f64], &mut [f64])> Preconditioner for FnPrecond<F> {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        (self.0)(r, z)
    }
}

impl SolverHandle for RevisionedHandle {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn method_name(&self) -> &'static str {
        match &self.correction {
            Correction::Exact => "revision-scaled",
            Correction::StalePrecond(_) => "revision-stale-precond",
            Correction::Woodbury(_) => "revision-woodbury",
        }
    }

    fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut x = vec![0.0; self.num_nodes];
        let (iters, residual) = self.solve_into(b, &mut x, &mut CgWorkspace::new())?;
        self.watch_iterations(iters);
        if self.records_own_stats() {
            self.stats.record(1, iters, residual);
        }
        Ok(x)
    }

    fn solve_batch(&self, rhs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, LinalgError> {
        if self.records_own_stats() {
            self.stats.record_batch();
        }
        let n = self.num_nodes;
        // Same fan-out contract as the backend handles: independent
        // per-RHS solves over per-worker scratch, results and stats in
        // RHS order (bit-identical at any thread count).
        let solved: Vec<(Vec<f64>, (usize, f64))> =
            par::with_threads_hint(self.parallelism, || {
                par::try_map_chunked(rhs.len(), 1, |range| {
                    let mut ws = CgWorkspace::new();
                    range
                        .map(|i| {
                            let mut x = vec![0.0; n];
                            let st = self.solve_into(&rhs[i], &mut x, &mut ws)?;
                            Ok((x, st))
                        })
                        .collect()
                })
            })?;
        // Post-join, in RHS order: both the stat counters and the
        // refresh decision are independent of thread scheduling.
        let mut out = Vec::with_capacity(solved.len());
        for (x, (iters, residual)) in solved {
            self.watch_iterations(iters);
            if self.records_own_stats() {
                self.stats.record(1, iters, residual);
            }
            out.push(x);
        }
        Ok(out)
    }

    fn stats(&self) -> SolveStats {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::PolicyMethod;
    use sgl_datasets::grid2d;
    use sgl_linalg::Rng;

    fn mean_zero_rhs(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::seed_from_u64(seed);
        let mut b = rng.normal_vec(n);
        vecops::project_out_mean(&mut b);
        b
    }

    #[test]
    fn per_revision_reuses_until_invalidated() {
        let g = grid2d(5, 5);
        let mut ctx = SolverContext::new(SolverPolicy::default());
        assert_eq!(ctx.handles_built(), 0);
        let a = ctx.handle_for(&g).unwrap();
        let b = ctx.handle_for(&g).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same revision must share the handle");
        assert_eq!(ctx.handles_built(), 1);
        ctx.invalidate();
        let c = ctx.handle_for(&g).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "invalidate must rebuild");
        assert_eq!(ctx.handles_built(), 2);
    }

    #[test]
    fn cumulative_stats_survive_rebuilds() {
        let g = grid2d(5, 5);
        let mut ctx = SolverContext::new(SolverPolicy::default());
        assert_eq!(ctx.cumulative_stats(), Default::default());
        let b = {
            let mut v = vec![0.0; 25];
            v[0] = 1.0;
            v[24] = -1.0;
            v
        };
        ctx.handle_for(&g).unwrap().solve(&b).unwrap();
        ctx.invalidate();
        ctx.handle_for(&g).unwrap().solve(&b).unwrap();
        let total = ctx.cumulative_stats();
        assert_eq!(total.solves, 2, "retired handle's solves must be kept");
        assert!(total.last_relative_residual >= 0.0);
    }

    #[test]
    fn per_call_always_rebuilds() {
        let g = grid2d(4, 4);
        let policy = SolverPolicy::default().with_reuse(ReuseMode::PerCall);
        let mut ctx = SolverContext::new(policy);
        let a = ctx.handle_for(&g).unwrap();
        let b = ctx.handle_for(&g).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(ctx.handles_built(), 2);
    }

    #[test]
    fn node_count_change_rebuilds() {
        let mut ctx = SolverContext::new(SolverPolicy::default());
        ctx.handle_for(&grid2d(4, 4)).unwrap();
        let h = ctx.handle_for(&grid2d(5, 5)).unwrap();
        assert_eq!(h.num_nodes(), 25);
        assert_eq!(ctx.handles_built(), 2);
    }

    #[test]
    fn silent_graph_mutation_is_caught_by_the_revision() {
        // Same node count, mutated weights, no invalidate() — the O(1)
        // revision check must not serve the handle factored for the old
        // graph.
        let mut g = grid2d(4, 4);
        let mut ctx = SolverContext::new(SolverPolicy::default());
        let a = ctx.handle_for(&g).unwrap();
        g.scale_weights(3.0);
        let b = ctx.handle_for(&g).unwrap();
        assert!(
            !Arc::ptr_eq(&a, &b),
            "stale handle served for mutated graph"
        );
        assert_eq!(ctx.handles_built(), 2);
        // R(0,1)-style sanity: the new handle solves the scaled system.
        let mut rhs = vec![0.0; 16];
        rhs[0] = 1.0;
        rhs[15] = -1.0;
        let xa = a.solve(&rhs).unwrap();
        let xb = b.solve(&rhs).unwrap();
        assert!(((xa[0] - xa[15]) / (xb[0] - xb[15]) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn same_revision_clone_shares_the_handle() {
        // A clone carries its original's revision and identical content:
        // the O(1) check may (and does) reuse the cached handle.
        let g = grid2d(5, 5);
        let clone = g.clone();
        let mut ctx = SolverContext::new(SolverPolicy::default());
        let a = ctx.handle_for(&g).unwrap();
        let b = ctx.handle_for(&clone).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(ctx.handles_built(), 1);
    }

    #[test]
    fn failed_build_drops_stale_cache() {
        let g = grid2d(4, 4);
        let policy = SolverPolicy::default().with_method(PolicyMethod::DenseCholesky);
        let mut ctx = SolverContext::new(SolverPolicy {
            dense_max_nodes: 16,
            ..policy
        });
        ctx.handle_for(&g).unwrap();
        ctx.invalidate();
        assert!(ctx.handle_for(&grid2d(6, 6)).is_err());
        assert!(ctx.current_handle().is_none());
    }

    /// Solve through a context handle and compare against a fresh
    /// factorization of the same graph.
    fn assert_matches_fresh(ctx: &mut SolverContext, g: &Graph, seed: u64, tol: f64) {
        let n = g.num_nodes();
        let b = mean_zero_rhs(n, seed);
        let x = ctx.handle_for(g).unwrap().solve(&b).unwrap();
        let fresh = SolverPolicy::default().build_handle(g).unwrap();
        let y = fresh.solve(&b).unwrap();
        let d = vecops::sub(&x, &y);
        assert!(
            vecops::norm2(&d) / vecops::norm2(&y).max(1e-300) < tol,
            "corrected solve drifted from fresh factorization: {}",
            vecops::norm2(&d)
        );
    }

    #[test]
    fn apply_deltas_solves_like_a_fresh_factorization() {
        let mut g = grid2d(6, 6);
        let mut ctx = SolverContext::new(SolverPolicy::default());
        ctx.handle_for(&g).unwrap();
        // Insert three chords and bump an existing edge.
        let mut deltas = Vec::new();
        for &(u, v, w) in &[(0usize, 14usize, 0.8), (3, 27, 1.3), (10, 35, 0.5)] {
            g.add_edge(u, v, w);
            deltas.push(EdgeDelta::insert(u, v, w));
        }
        let e0 = g.edge(0);
        g.set_weight(0, e0.weight * 2.0);
        deltas.push(EdgeDelta::reweight(e0.u, e0.v, e0.weight, e0.weight * 2.0));
        ctx.apply_deltas(&g, &deltas).unwrap();
        assert_eq!(ctx.handles_built(), 1, "delta batch must not refactor");
        assert_eq!(ctx.delta_rank(), 4);
        let h = ctx.handle_for(&g).unwrap();
        // Auto on a mesh resolves to AMG-PCG: the revision reuses its
        // stale V-cycle as the preconditioner, no extra solves at all.
        assert_eq!(h.method_name(), "revision-stale-precond");
        assert_eq!(ctx.handles_built(), 1);
        assert_matches_fresh(&mut ctx, &g, 1, 1e-8);
        let st = ctx.revision_stats();
        assert_eq!(st.delta_updates, 1);
        assert_eq!(st.delta_rank_applied, 4);
    }

    #[test]
    fn stacked_delta_batches_keep_matching() {
        let mut g = grid2d(6, 6);
        let mut ctx = SolverContext::new(SolverPolicy::default());
        ctx.handle_for(&g).unwrap();
        let mut rng = Rng::seed_from_u64(42);
        for round in 0..4 {
            let mut deltas = Vec::new();
            for _ in 0..3 {
                let u = rng.below(36);
                let v = rng.below(36);
                if u == v {
                    continue;
                }
                let w = 0.3 + rng.uniform();
                g.add_edge(u, v, w);
                deltas.push(EdgeDelta::insert(u, v, w));
            }
            ctx.apply_deltas(&g, &deltas).unwrap();
            assert_matches_fresh(&mut ctx, &g, 100 + round, 1e-8);
        }
        assert_eq!(ctx.handles_built(), 1, "all four batches absorbed");
        assert!(ctx.revision_stats().delta_updates >= 4);
    }

    #[test]
    fn rank_cap_forces_refactor() {
        let mut g = grid2d(6, 6);
        let policy = SolverPolicy::default().with_max_delta_rank(2);
        let mut ctx = SolverContext::new(policy);
        ctx.handle_for(&g).unwrap();
        g.add_edge(0, 8, 1.0);
        g.add_edge(1, 9, 1.0);
        ctx.apply_deltas(
            &g,
            &[EdgeDelta::insert(0, 8, 1.0), EdgeDelta::insert(1, 9, 1.0)],
        )
        .unwrap();
        ctx.handle_for(&g).unwrap();
        assert_eq!(ctx.handles_built(), 1);
        // One more distinct edge exceeds the cap of 2: full refactor.
        g.add_edge(2, 10, 1.0);
        ctx.apply_deltas(&g, &[EdgeDelta::insert(2, 10, 1.0)])
            .unwrap();
        ctx.handle_for(&g).unwrap();
        assert_eq!(ctx.handles_built(), 2);
        assert_eq!(ctx.revision_stats().refreshes_on_rank, 1);
        assert_eq!(ctx.delta_rank(), 0, "refresh clears the delta state");
        assert_matches_fresh(&mut ctx, &g, 7, 1e-8);
    }

    #[test]
    fn zero_cap_disables_the_incremental_path() {
        let mut g = grid2d(5, 5);
        let mut ctx = SolverContext::new(SolverPolicy::default().with_max_delta_rank(0));
        ctx.handle_for(&g).unwrap();
        g.add_edge(0, 7, 1.0);
        ctx.apply_deltas(&g, &[EdgeDelta::insert(0, 7, 1.0)])
            .unwrap();
        ctx.handle_for(&g).unwrap();
        assert_eq!(ctx.handles_built(), 2, "cap 0 must always refactor");
        assert_eq!(ctx.revision_stats().delta_updates, 0);
    }

    #[test]
    fn apply_scale_is_exact_and_free() {
        let mut g = grid2d(5, 5);
        let mut ctx = SolverContext::new(SolverPolicy::default());
        let before = ctx.handle_for(&g).unwrap();
        let b = mean_zero_rhs(25, 3);
        let x0 = before.solve(&b).unwrap();
        g.scale_weights(4.0);
        ctx.apply_scale(&g, 4.0);
        let after = ctx.handle_for(&g).unwrap();
        assert_eq!(ctx.handles_built(), 1, "rescale must not refactor");
        assert_eq!(after.method_name(), "revision-scaled");
        let x1 = after.solve(&b).unwrap();
        for (a, b) in x0.iter().zip(&x1) {
            assert!((a / 4.0 - b).abs() < 1e-12, "{a} vs {b}");
        }
        assert_matches_fresh(&mut ctx, &g, 4, 1e-8);
    }

    #[test]
    fn deltas_then_scale_compose() {
        let mut g = grid2d(6, 6);
        let mut ctx = SolverContext::new(SolverPolicy::default());
        ctx.handle_for(&g).unwrap();
        g.add_edge(0, 14, 0.7);
        ctx.apply_deltas(&g, &[EdgeDelta::insert(0, 14, 0.7)])
            .unwrap();
        g.scale_weights(2.5);
        ctx.apply_scale(&g, 2.5);
        assert_eq!(ctx.handles_built(), 1);
        assert_matches_fresh(&mut ctx, &g, 5, 1e-8);
        // And a delta on top of the scale still composes.
        g.add_edge(2, 20, 1.1);
        ctx.apply_deltas(&g, &[EdgeDelta::insert(2, 20, 1.1)])
            .unwrap();
        assert_eq!(ctx.handles_built(), 1);
        assert_matches_fresh(&mut ctx, &g, 6, 1e-8);
    }

    #[test]
    fn deltas_without_a_cached_handle_fall_back_to_stale() {
        let mut g = grid2d(5, 5);
        let mut ctx = SolverContext::new(SolverPolicy::default());
        // No handle yet: apply_deltas is a no-op schedule.
        g.add_edge(0, 7, 1.0);
        ctx.apply_deltas(&g, &[EdgeDelta::insert(0, 7, 1.0)])
            .unwrap();
        ctx.handle_for(&g).unwrap();
        assert_eq!(ctx.handles_built(), 1);
        assert_eq!(ctx.revision_stats().delta_updates, 0);
    }

    #[test]
    fn unreported_mutation_with_empty_delta_refactors() {
        let mut g = grid2d(5, 5);
        let mut ctx = SolverContext::new(SolverPolicy::default());
        ctx.handle_for(&g).unwrap();
        g.add_edge(0, 7, 1.0);
        // Caller reports "no delta" for a moved graph: the context must
        // not pretend the cached handle still matches.
        ctx.apply_deltas(&g, &[]).unwrap();
        ctx.handle_for(&g).unwrap();
        assert_eq!(ctx.handles_built(), 2);
    }

    #[test]
    fn delta_equivalence_across_every_backend_method() {
        for method in [
            PolicyMethod::TreePcg,
            PolicyMethod::AmgPcg,
            PolicyMethod::JacobiPcg,
            PolicyMethod::IcholPcg,
            PolicyMethod::DenseCholesky,
        ] {
            let mut g = grid2d(6, 6);
            let mut ctx = SolverContext::new(SolverPolicy::default().with_method(method));
            ctx.handle_for(&g).unwrap();
            g.add_edge(0, 13, 0.9);
            g.add_edge(7, 29, 1.4);
            ctx.apply_deltas(
                &g,
                &[EdgeDelta::insert(0, 13, 0.9), EdgeDelta::insert(7, 29, 1.4)],
            )
            .unwrap();
            assert_eq!(ctx.handles_built(), 1, "{method:?}");
            assert_matches_fresh(&mut ctx, &g, 11, 1e-7);
        }
    }

    #[test]
    fn injected_breakdown_walks_the_downgrade_ladder() {
        let g = grid2d(5, 5);
        let mut ctx =
            SolverContext::new(SolverPolicy::default().with_method(PolicyMethod::IcholPcg));
        let plan = Arc::new(FaultPlan::new().with_fault(FaultKind::IcholBreakdown, 0));
        ctx.set_fault_plan(Arc::clone(&plan));
        let h = ctx.handle_for(&g).unwrap();
        assert_eq!(h.method_name(), "tree-pcg", "first rung of the ladder");
        assert_eq!(ctx.revision_stats().precond_downgrades, 1);
        assert_eq!(plan.injected_count(), 1);
        // The downgraded handle still solves to policy tolerance.
        assert_matches_fresh(&mut ctx, &g, 21, 1e-8);
        // The next rebuild is past the trigger: back to the primary.
        ctx.invalidate();
        let h2 = ctx.handle_for(&g).unwrap();
        assert_eq!(h2.method_name(), "ichol-pcg");
        assert_eq!(ctx.revision_stats().precond_downgrades, 1);
    }

    #[test]
    fn injected_stagnation_surfaces_then_recovers() {
        let g = grid2d(5, 5);
        let mut ctx = SolverContext::new(SolverPolicy::default());
        let plan = Arc::new(FaultPlan::new().with_fault(FaultKind::PcgStagnation, 0));
        ctx.set_fault_plan(Arc::clone(&plan));
        let h = ctx.handle_for(&g).unwrap();
        let b = mean_zero_rhs(25, 5);
        assert!(matches!(h.solve(&b), Err(LinalgError::NotConverged { .. })));
        // The trigger is spent: the very same handle serves the retry.
        h.solve(&b).unwrap();
        assert_eq!(plan.injected_count(), 1);
        assert_eq!(h.stats().solves, 1, "the injected failure is not a solve");
    }

    #[test]
    fn injected_woodbury_singularity_forces_refresh() {
        let n = 20;
        let mut g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1, 1.0)));
        let mut ctx =
            SolverContext::new(SolverPolicy::default().with_method(PolicyMethod::TreeDirect));
        let plan = Arc::new(FaultPlan::new().with_fault(FaultKind::WoodburySingular, 0));
        ctx.set_fault_plan(Arc::clone(&plan));
        ctx.handle_for(&g).unwrap();
        g.add_edge(0, 10, 0.5);
        ctx.apply_deltas(&g, &[EdgeDelta::insert(0, 10, 0.5)])
            .unwrap();
        assert_eq!(plan.injected_count(), 1);
        assert_eq!(ctx.revision_stats().refreshes_on_numeric, 1);
        // Recovery: the next handle is a clean refactorization.
        ctx.handle_for(&g).unwrap();
        assert_eq!(ctx.handles_built(), 2);
        assert_matches_fresh(&mut ctx, &g, 22, 1e-8);
    }

    #[test]
    fn tree_base_with_off_tree_deltas_is_the_classic_case() {
        // Exact O(N) tree solve + Woodbury over the off-tree chords: the
        // corrected preconditioner is an exact inverse, so the outer PCG
        // settles in a couple of iterations.
        let n = 30;
        let mut g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1, 1.0 + 0.1 * i as f64)));
        let mut ctx =
            SolverContext::new(SolverPolicy::default().with_method(PolicyMethod::TreeDirect));
        ctx.handle_for(&g).unwrap();
        g.add_edge(0, 15, 0.5);
        g.add_edge(7, 22, 1.0);
        ctx.apply_deltas(
            &g,
            &[EdgeDelta::insert(0, 15, 0.5), EdgeDelta::insert(7, 22, 1.0)],
        )
        .unwrap();
        let h = ctx.handle_for(&g).unwrap();
        let b = mean_zero_rhs(n, 9);
        h.solve(&b).unwrap();
        assert_eq!(ctx.handles_built(), 1);
        assert!(
            h.stats().iterations <= 4,
            "near-exact preconditioner should converge almost immediately, took {}",
            h.stats().iterations
        );
        assert_matches_fresh(&mut ctx, &g, 10, 1e-8);
    }
}
