//! [`SolverContext`] — a session-owned cache of the current graph
//! revision's [`SolverHandle`].
//!
//! The SGL loop mutates its learned graph between iterations but solves
//! against a *fixed* graph many times within one iteration (edge
//! scaling, shift-invert embedding, resistance sketching). The context
//! captures exactly that lifecycle: stages call
//! [`handle_for`](SolverContext::handle_for) and share one prepared
//! handle; the owner calls [`invalidate`](SolverContext::invalidate)
//! whenever the graph changes (edge insertion, weight rescaling), and
//! the next request rebuilds. As a safety net for callers that mutate
//! without invalidating, every request also checks a cheap fingerprint
//! of the graph's edge list — a stale handle is never silently served.

use crate::backend::{ReuseMode, SolveStats, SolverBackend, SolverHandle, SolverPolicy};
use sgl_graph::Graph;
use sgl_linalg::LinalgError;
use std::sync::Arc;

/// Revision-tracked solver cache driven by a [`SolverPolicy`].
pub struct SolverContext {
    policy: SolverPolicy,
    backend: Box<dyn SolverBackend>,
    handle: Option<Arc<dyn SolverHandle>>,
    /// Fingerprint of the graph the cached handle was built for.
    fingerprint: u64,
    stale: bool,
    builds: usize,
    /// Stats accumulated from handles of *previous* revisions (retired
    /// on rebuild), so the context can report lifetime totals.
    retired_stats: SolveStats,
}

/// Cheap structural fingerprint (FNV-1a over the edge list): detects
/// graph changes that slip past an explicit
/// [`invalidate`](SolverContext::invalidate), including same-size
/// topology or weight edits.
fn graph_fingerprint(graph: &Graph) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(PRIME);
    };
    mix(graph.num_nodes() as u64);
    mix(graph.num_edges() as u64);
    for e in graph.edges() {
        mix(e.u as u64);
        mix(e.v as u64);
        mix(e.weight.to_bits());
    }
    h
}

impl std::fmt::Debug for SolverContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverContext")
            .field("policy", &self.policy)
            .field("backend", &self.backend.name())
            .field("cached", &self.handle.is_some())
            .field("stale", &self.stale)
            .field("builds", &self.builds)
            .finish()
    }
}

impl SolverContext {
    /// Create a context for the given policy.
    pub fn new(policy: SolverPolicy) -> Self {
        let backend = policy.backend();
        SolverContext {
            policy,
            backend,
            handle: None,
            fingerprint: 0,
            stale: false,
            builds: 0,
            retired_stats: SolveStats::default(),
        }
    }

    /// The policy driving this context.
    pub fn policy(&self) -> &SolverPolicy {
        &self.policy
    }

    /// Mark the cached handle stale (the graph changed); the next
    /// [`handle_for`](SolverContext::handle_for) rebuilds.
    pub fn invalidate(&mut self) {
        self.stale = true;
    }

    /// The handle for the current graph revision, building it on first
    /// use, after [`invalidate`](SolverContext::invalidate), and
    /// whenever the graph's edge-list fingerprint differs from the one
    /// the cached handle was built for (so a mutated graph can never be
    /// silently served a stale handle, even without an explicit
    /// invalidation). Under [`ReuseMode::PerCall`] every request
    /// rebuilds.
    ///
    /// # Errors
    /// Propagates [`SolverBackend::build`] failures; the stale cache is
    /// dropped either way.
    pub fn handle_for(&mut self, graph: &Graph) -> Result<Arc<dyn SolverHandle>, LinalgError> {
        let fingerprint = graph_fingerprint(graph);
        let rebuild = self.handle.is_none()
            || self.stale
            || fingerprint != self.fingerprint
            || self.policy.reuse == ReuseMode::PerCall;
        if rebuild {
            if let Some(old) = self.handle.take() {
                // Retire the previous revision's counters so lifetime
                // totals survive the rebuild (drop it even if build fails).
                self.retired_stats.absorb(&old.stats());
            }
            let handle = self.backend.build(graph)?;
            self.builds += 1;
            self.stale = false;
            self.fingerprint = fingerprint;
            self.handle = Some(handle);
        }
        Ok(Arc::clone(self.handle.as_ref().expect("handle just built")))
    }

    /// The cached handle, if any (no build is triggered).
    pub fn current_handle(&self) -> Option<&Arc<dyn SolverHandle>> {
        self.handle.as_ref()
    }

    /// How many handles this context has built — the observable cost of
    /// the reuse policy (and the witness that a solver-free pipeline
    /// never built one).
    pub fn handles_built(&self) -> usize {
        self.builds
    }

    /// Lifetime solve statistics: every retired revision's counters plus
    /// the current handle's (zeros if no handle was ever built).
    pub fn cumulative_stats(&self) -> SolveStats {
        let mut total = self.retired_stats;
        if let Some(h) = &self.handle {
            total.absorb(&h.stats());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::PolicyMethod;
    use sgl_datasets::grid2d;

    #[test]
    fn per_revision_reuses_until_invalidated() {
        let g = grid2d(5, 5);
        let mut ctx = SolverContext::new(SolverPolicy::default());
        assert_eq!(ctx.handles_built(), 0);
        let a = ctx.handle_for(&g).unwrap();
        let b = ctx.handle_for(&g).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same revision must share the handle");
        assert_eq!(ctx.handles_built(), 1);
        ctx.invalidate();
        let c = ctx.handle_for(&g).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "invalidate must rebuild");
        assert_eq!(ctx.handles_built(), 2);
    }

    #[test]
    fn cumulative_stats_survive_rebuilds() {
        let g = grid2d(5, 5);
        let mut ctx = SolverContext::new(SolverPolicy::default());
        assert_eq!(ctx.cumulative_stats(), Default::default());
        let b = {
            let mut v = vec![0.0; 25];
            v[0] = 1.0;
            v[24] = -1.0;
            v
        };
        ctx.handle_for(&g).unwrap().solve(&b).unwrap();
        ctx.invalidate();
        ctx.handle_for(&g).unwrap().solve(&b).unwrap();
        let total = ctx.cumulative_stats();
        assert_eq!(total.solves, 2, "retired handle's solves must be kept");
        assert!(total.last_relative_residual >= 0.0);
    }

    #[test]
    fn per_call_always_rebuilds() {
        let g = grid2d(4, 4);
        let policy = SolverPolicy::default().with_reuse(ReuseMode::PerCall);
        let mut ctx = SolverContext::new(policy);
        let a = ctx.handle_for(&g).unwrap();
        let b = ctx.handle_for(&g).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(ctx.handles_built(), 2);
    }

    #[test]
    fn node_count_change_rebuilds() {
        let mut ctx = SolverContext::new(SolverPolicy::default());
        ctx.handle_for(&grid2d(4, 4)).unwrap();
        let h = ctx.handle_for(&grid2d(5, 5)).unwrap();
        assert_eq!(h.num_nodes(), 25);
        assert_eq!(ctx.handles_built(), 2);
    }

    #[test]
    fn silent_graph_mutation_is_caught_by_the_fingerprint() {
        // Same node count, mutated weights, no invalidate() — the
        // context must not serve the handle factored for the old graph.
        let mut g = grid2d(4, 4);
        let mut ctx = SolverContext::new(SolverPolicy::default());
        let a = ctx.handle_for(&g).unwrap();
        g.scale_weights(3.0);
        let b = ctx.handle_for(&g).unwrap();
        assert!(
            !Arc::ptr_eq(&a, &b),
            "stale handle served for mutated graph"
        );
        assert_eq!(ctx.handles_built(), 2);
        // R(0,1)-style sanity: the new handle solves the scaled system.
        let mut rhs = vec![0.0; 16];
        rhs[0] = 1.0;
        rhs[15] = -1.0;
        let xa = a.solve(&rhs).unwrap();
        let xb = b.solve(&rhs).unwrap();
        assert!(((xa[0] - xa[15]) / (xb[0] - xb[15]) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn failed_build_drops_stale_cache() {
        let g = grid2d(4, 4);
        let policy = SolverPolicy::default().with_method(PolicyMethod::DenseCholesky);
        let mut ctx = SolverContext::new(SolverPolicy {
            dense_max_nodes: 16,
            ..policy
        });
        ctx.handle_for(&g).unwrap();
        ctx.invalidate();
        assert!(ctx.handle_for(&grid2d(6, 6)).is_err());
        assert!(ctx.current_handle().is_none());
    }
}
