//! Deterministic fault injection for resilience testing.
//!
//! A [`FaultPlan`] is a seeded schedule of failures threaded through the
//! solver layer ([`SolverContext`](crate::SolverContext)) and the serving
//! layer (`sgl-serve`). Each [`FaultKind`] has *opportunity* sites in the
//! code — points where that failure could physically occur (a
//! preconditioner build, a PCG solve, a Woodbury capacitance assembly, a
//! query validation, a writer-thread ingest). Every time execution
//! reaches a site it asks [`FaultPlan::should_fire`], which increments
//! that kind's opportunity counter and fires iff the counter matches one
//! of the plan's trigger indices.
//!
//! Opportunity counters advance on the *serial* control path (one tick
//! per solve/build call, checked before any parallel dispatch), so a
//! plan fires at exactly the same logical instant regardless of thread
//! count — faulted runs stay bit-identical at 1 vs N threads, which is
//! what lets CI assert recovery equivalence.
//!
//! Plans are cheap, `Sync`, and shared by `Arc`; a plan with no triggers
//! is inert. [`FaultPlan::seeded`] derives a small standard schedule
//! from a seed (used by the bench interrupt/fault arms and the CI smoke
//! job), while [`FaultPlan::with_fault`] pins individual triggers for
//! targeted tests.

use sgl_linalg::{LinalgError, Rng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The failure modes a [`FaultPlan`] can force.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// IC(0) (or any preconditioner) factorization breakdown at handle
    /// build time. Recovery: the downgrade ladder in
    /// [`SolverContext`](crate::SolverContext) (IC(0) → tree → Jacobi).
    IcholBreakdown,
    /// PCG stagnation / iteration-budget exhaustion on a solve.
    /// Recovery: the session invalidates its solver state and retries
    /// on a fresh factorization.
    PcgStagnation,
    /// Singular Woodbury capacitance during a low-rank delta update.
    /// Recovery: the context falls back to a stale-preconditioner
    /// correction and schedules a refresh (`refreshes_on_numeric`).
    WoodburySingular,
    /// A corrupted (NaN-poisoned) query request reaching `sgl-serve`.
    /// Recovery: request validation rejects it as a `BadQuery` without
    /// disturbing the batch it rode in on.
    PoisonQuery,
    /// A panic inside the `sgl-serve` writer thread mid-ingest.
    /// Recovery: the supervised writer catches the panic, rebuilds its
    /// session from the accumulated measurements, and republishes;
    /// readers keep serving the last published snapshot throughout.
    WriterPanic,
}

impl FaultKind {
    /// Every kind, in counter order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::IcholBreakdown,
        FaultKind::PcgStagnation,
        FaultKind::WoodburySingular,
        FaultKind::PoisonQuery,
        FaultKind::WriterPanic,
    ];

    /// Stable kebab-case label (logs, bench JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::IcholBreakdown => "ichol-breakdown",
            FaultKind::PcgStagnation => "pcg-stagnation",
            FaultKind::WoodburySingular => "woodbury-singular",
            FaultKind::PoisonQuery => "poison-query",
            FaultKind::WriterPanic => "writer-panic",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultKind::IcholBreakdown => 0,
            FaultKind::PcgStagnation => 1,
            FaultKind::WoodburySingular => 2,
            FaultKind::PoisonQuery => 3,
            FaultKind::WriterPanic => 4,
        }
    }
}

/// One fault that actually fired: which kind, at which opportunity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The failure mode that fired.
    pub kind: FaultKind,
    /// Zero-based opportunity index at which it fired.
    pub opportunity: usize,
}

/// A deterministic schedule of injected failures. See the module docs.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Trigger opportunity indices per kind (sorted, deduplicated).
    triggers: [Vec<usize>; 5],
    /// Live opportunity counters per kind.
    counters: [AtomicUsize; 5],
    /// Log of faults that actually fired.
    injected: Mutex<Vec<FaultEvent>>,
}

impl FaultPlan {
    /// An inert plan: every `should_fire` is `false`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a trigger: fire `kind` at its `nth` (zero-based) opportunity.
    #[must_use]
    pub fn with_fault(mut self, kind: FaultKind, nth: usize) -> Self {
        let t = &mut self.triggers[kind.index()];
        if !t.contains(&nth) {
            t.push(nth);
            t.sort_unstable();
        }
        self
    }

    /// The standard seeded schedule used by the bench fault arm and the
    /// CI smoke job: one early IC(0) breakdown, one PCG stagnation, one
    /// Woodbury singularity, one poisoned query, and one writer panic,
    /// each at a seed-derived early opportunity.
    pub fn seeded(seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed ^ 0xFA17_FA17_FA17_FA17);
        Self::new()
            .with_fault(FaultKind::IcholBreakdown, rng.below(2))
            .with_fault(FaultKind::PcgStagnation, 1 + rng.below(4))
            .with_fault(FaultKind::WoodburySingular, rng.below(2))
            .with_fault(FaultKind::PoisonQuery, rng.below(3))
            .with_fault(FaultKind::WriterPanic, rng.below(2))
    }

    /// Whether any trigger is registered for `kind` (fired or not).
    pub fn plans(&self, kind: FaultKind) -> bool {
        !self.triggers[kind.index()].is_empty()
    }

    /// Record one opportunity for `kind`; returns `true` iff the plan
    /// fires here. A firing is logged and visible in [`Self::injected`].
    pub fn should_fire(&self, kind: FaultKind) -> bool {
        let i = kind.index();
        let opportunity = self.counters[i].fetch_add(1, Ordering::Relaxed);
        if !self.triggers[i].contains(&opportunity) {
            return false;
        }
        if let Ok(mut log) = self.injected.lock() {
            log.push(FaultEvent { kind, opportunity });
        }
        true
    }

    /// The canonical error an injected solver-side fault surfaces as.
    /// Breakdown faults mimic a factorization failure; stagnation faults
    /// mimic an exhausted iteration budget.
    pub fn error_for(kind: FaultKind) -> LinalgError {
        match kind {
            FaultKind::IcholBreakdown => LinalgError::NotPositiveDefinite { pivot: usize::MAX },
            _ => LinalgError::NotConverged {
                method: "fault-injection",
                iterations: 0,
                residual: f64::INFINITY,
            },
        }
    }

    /// Faults that have actually fired so far, in firing order.
    pub fn injected(&self) -> Vec<FaultEvent> {
        self.injected.lock().map(|l| l.clone()).unwrap_or_default()
    }

    /// Number of faults that have fired so far.
    pub fn injected_count(&self) -> usize {
        self.injected.lock().map(|l| l.len()).unwrap_or(0)
    }

    /// Opportunities observed so far for `kind`.
    pub fn opportunities(&self, kind: FaultKind) -> usize {
        self.counters[kind.index()].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires() {
        let plan = FaultPlan::new();
        for kind in FaultKind::ALL {
            for _ in 0..5 {
                assert!(!plan.should_fire(kind));
            }
            assert_eq!(plan.opportunities(kind), 5);
        }
        assert_eq!(plan.injected_count(), 0);
    }

    #[test]
    fn triggers_fire_at_exact_opportunities() {
        let plan = FaultPlan::new()
            .with_fault(FaultKind::PcgStagnation, 2)
            .with_fault(FaultKind::PcgStagnation, 4);
        let fired: Vec<bool> = (0..6)
            .map(|_| plan.should_fire(FaultKind::PcgStagnation))
            .collect();
        assert_eq!(fired, [false, false, true, false, true, false]);
        assert_eq!(
            plan.injected(),
            vec![
                FaultEvent {
                    kind: FaultKind::PcgStagnation,
                    opportunity: 2
                },
                FaultEvent {
                    kind: FaultKind::PcgStagnation,
                    opportunity: 4
                },
            ]
        );
        // Other kinds are untouched.
        assert!(!plan.plans(FaultKind::WriterPanic));
        assert!(plan.plans(FaultKind::PcgStagnation));
    }

    #[test]
    fn seeded_schedule_is_deterministic_and_covers_all_kinds() {
        let a = FaultPlan::seeded(42);
        let b = FaultPlan::seeded(42);
        assert_eq!(a.triggers, b.triggers);
        for kind in FaultKind::ALL {
            assert!(a.plans(kind), "seeded plan misses {}", kind.as_str());
        }
        let c = FaultPlan::seeded(43);
        assert_ne!(a.triggers, c.triggers);
    }

    #[test]
    fn injected_errors_match_failure_modes() {
        assert!(matches!(
            FaultPlan::error_for(FaultKind::IcholBreakdown),
            LinalgError::NotPositiveDefinite { .. }
        ));
        assert!(matches!(
            FaultPlan::error_for(FaultKind::PcgStagnation),
            LinalgError::NotConverged { .. }
        ));
    }
}
