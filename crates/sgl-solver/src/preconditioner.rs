//! Preconditioners for projected PCG on graph Laplacians.

use crate::tree_solver::TreeSolver;
use sgl_graph::mst::maximum_spanning_tree;
use sgl_graph::Graph;
use sgl_linalg::vecops;
use sgl_linalg::{CsrMatrix, Preconditioner};

/// Spanning-tree (support-graph) preconditioner: applies an exact solve on
/// a maximum spanning tree of the graph.
///
/// For the SGL learned graph — a spanning tree plus `O(N β · iters)`
/// off-tree edges — this preconditioner is close to exact, and PCG
/// converges in a handful of iterations.
#[derive(Debug, Clone)]
pub struct TreePreconditioner {
    solver: TreeSolver,
}

impl TreePreconditioner {
    /// Build from a connected graph by extracting its maximum spanning
    /// tree (heaviest conductances give the strongest support).
    ///
    /// # Panics
    /// Panics if the graph is disconnected.
    pub fn from_graph(g: &Graph) -> Self {
        let t = maximum_spanning_tree(g);
        assert_eq!(
            t.num_components, 1,
            "tree preconditioner requires a connected graph"
        );
        TreePreconditioner {
            solver: TreeSolver::new(&t.to_graph(g)),
        }
    }

    /// Build directly from a known spanning tree.
    ///
    /// # Panics
    /// Panics if `tree` is not a connected tree.
    pub fn from_tree(tree: &Graph) -> Self {
        TreePreconditioner {
            solver: TreeSolver::new(tree),
        }
    }
}

impl Preconditioner for TreePreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.solver.solve_into(r, z);
    }
}

/// Symmetric Gauss–Seidel preconditioner on a Laplacian-like CSR matrix.
///
/// One application performs a forward then a backward sweep, which keeps
/// the preconditioner symmetric (a requirement for PCG). The diagonal is
/// regularized with a tiny shift so singular Laplacians stay sweepable.
#[derive(Debug, Clone)]
pub struct GaussSeidelPreconditioner {
    a: CsrMatrix,
    diag: Vec<f64>,
    sweeps: usize,
}

impl GaussSeidelPreconditioner {
    /// Wrap a symmetric CSR matrix; `sweeps` forward+backward passes per
    /// application (1 is standard).
    ///
    /// # Panics
    /// Panics if the matrix is not square or `sweeps == 0`.
    pub fn new(a: CsrMatrix, sweeps: usize) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "gauss-seidel: square matrix required");
        assert!(sweeps > 0, "gauss-seidel: needs at least one sweep");
        let diag: Vec<f64> = a
            .diagonal()
            .iter()
            .map(|&d| if d.abs() < 1e-300 { 1.0 } else { d })
            .collect();
        GaussSeidelPreconditioner { a, diag, sweeps }
    }

    /// One forward Gauss–Seidel sweep updating `x` in place.
    pub fn sweep_forward(&self, b: &[f64], x: &mut [f64]) {
        self.forward(b, x);
    }

    /// One backward Gauss–Seidel sweep updating `x` in place.
    pub fn sweep_backward(&self, b: &[f64], x: &mut [f64]) {
        self.backward(b, x);
    }

    fn forward(&self, b: &[f64], x: &mut [f64]) {
        let n = self.diag.len();
        for i in 0..n {
            let (cols, vals) = self.a.row(i);
            let mut s = b[i];
            for (c, v) in cols.iter().zip(vals) {
                if *c != i {
                    s -= v * x[*c];
                }
            }
            x[i] = s / self.diag[i];
        }
    }

    fn backward(&self, b: &[f64], x: &mut [f64]) {
        let n = self.diag.len();
        for i in (0..n).rev() {
            let (cols, vals) = self.a.row(i);
            let mut s = b[i];
            for (c, v) in cols.iter().zip(vals) {
                if *c != i {
                    s -= v * x[*c];
                }
            }
            x[i] = s / self.diag[i];
        }
    }

    /// Run `sweeps` symmetric smoothing passes on `x` for `A x = b`.
    pub fn smooth(&self, b: &[f64], x: &mut [f64]) {
        for _ in 0..self.sweeps {
            self.forward(b, x);
            self.backward(b, x);
        }
    }
}

impl Preconditioner for GaussSeidelPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.iter_mut().for_each(|v| *v = 0.0);
        self.smooth(r, z);
        vecops::project_out_mean(z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_graph::laplacian::laplacian_csr;
    use sgl_linalg::cg::{pcg_solve, CgOptions};
    use sgl_linalg::{ProjectedOperator, Rng};

    fn cycle_graph(n: usize) -> Graph {
        let mut edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        edges.push((n - 1, 0, 1.0));
        Graph::from_edges(n, edges)
    }

    fn solve_with<M: Preconditioner>(g: &Graph, m: &M, seed: u64) -> usize {
        let l = laplacian_csr(g);
        let mut rng = Rng::seed_from_u64(seed);
        let mut b = rng.normal_vec(g.num_nodes());
        vecops::project_out_mean(&mut b);
        let opts = CgOptions {
            rtol: 1e-10,
            project_mean: true,
            ..CgOptions::default()
        };
        let p = ProjectedOperator::new(&l);
        let sol = pcg_solve(&p, m, &b, &opts).unwrap();
        // Verify residual.
        let lx = l.matvec(&sol.x);
        let mut r = vecops::sub(&b, &lx);
        vecops::project_out_mean(&mut r);
        assert!(vecops::norm2(&r) / vecops::norm2(&b) < 1e-8);
        sol.iterations
    }

    #[test]
    fn tree_preconditioner_is_exact_on_trees() {
        let tree = Graph::from_edges(50, (0..49).map(|i| (i, i + 1, 1.0 + i as f64)));
        let m = TreePreconditioner::from_tree(&tree);
        let iters = solve_with(&tree, &m, 3);
        assert!(iters <= 2, "tree-preconditioned solve took {iters} iters");
    }

    #[test]
    fn tree_preconditioner_fast_on_near_tree() {
        // Cycle = tree + one edge.
        let g = cycle_graph(100);
        let m = TreePreconditioner::from_graph(&g);
        let iters = solve_with(&g, &m, 4);
        assert!(iters <= 10, "near-tree solve took {iters} iters");
    }

    #[test]
    fn gauss_seidel_solves_cycle() {
        let g = cycle_graph(30);
        let m = GaussSeidelPreconditioner::new(laplacian_csr(&g), 1);
        let iters = solve_with(&g, &m, 5);
        assert!(iters < 100);
    }

    #[test]
    fn gauss_seidel_smooth_reduces_residual() {
        let g = cycle_graph(20);
        let l = laplacian_csr(&g);
        let m = GaussSeidelPreconditioner::new(l.clone(), 2);
        let mut rng = Rng::seed_from_u64(9);
        let mut b = rng.normal_vec(20);
        vecops::project_out_mean(&mut b);
        let mut x = vec![0.0; 20];
        let r0 = vecops::norm2(&b);
        m.smooth(&b, &mut x);
        let lx = l.matvec(&x);
        let mut r = vecops::sub(&b, &lx);
        vecops::project_out_mean(&mut r);
        assert!(vecops::norm2(&r) < r0);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn tree_preconditioner_rejects_disconnected() {
        let g = Graph::from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)]);
        TreePreconditioner::from_graph(&g);
    }
}
