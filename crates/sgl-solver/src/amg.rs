//! Unsmoothed-aggregation algebraic multigrid for graph Laplacians.
//!
//! With piecewise-constant prolongation the Galerkin coarse operator
//! `Pᵀ L P` is itself the Laplacian of the *contracted* graph, so the whole
//! hierarchy is built with plain graph operations:
//!
//! 1. aggregate each node with its (unaggregated) neighbors — strongest
//!    connections first;
//! 2. contract the graph along the aggregation map;
//! 3. repeat until the coarse graph is small, then factor it densely with
//!    an eigen-pseudoinverse (the Laplacian null space is handled exactly).
//!
//! One symmetric V-cycle (forward Gauss–Seidel down, backward up) is an
//! SPD operation on the mean-zero subspace and is used as the PCG
//! preconditioner for mesh-like graphs, standing in for the SAMG solver
//! the paper cites.

use crate::preconditioner::GaussSeidelPreconditioner;
use sgl_graph::laplacian::laplacian_csr;
use sgl_graph::{AdjacencyCsr, Graph};
use sgl_linalg::{vecops, CsrMatrix, DenseMatrix, Preconditioner, SymEig};

/// Options controlling hierarchy construction.
#[derive(Debug, Clone)]
pub struct AmgOptions {
    /// Stop coarsening when a level has at most this many nodes.
    pub coarsest_size: usize,
    /// Hard cap on the number of levels.
    pub max_levels: usize,
    /// Abort coarsening if a level shrinks by less than this factor
    /// (guards against stalls on pathological graphs).
    pub min_shrink: f64,
    /// Gauss–Seidel sweeps per pre/post smoothing step.
    pub smoothing_sweeps: usize,
}

impl Default for AmgOptions {
    fn default() -> Self {
        AmgOptions {
            coarsest_size: 64,
            max_levels: 25,
            min_shrink: 0.9,
            smoothing_sweeps: 1,
        }
    }
}

struct Level {
    laplacian: CsrMatrix,
    smoother: GaussSeidelPreconditioner,
    /// Fine node → coarse aggregate id (map to the next level).
    aggregate_of: Vec<usize>,
    num_coarse: usize,
}

/// Dense eigen-pseudoinverse used at the coarsest level.
struct CoarseSolve {
    values: Vec<f64>,
    vectors: DenseMatrix,
}

impl CoarseSolve {
    fn new(l: &CsrMatrix) -> Self {
        let eig = SymEig::compute(&l.to_dense()).expect("coarse eig");
        CoarseSolve {
            values: eig.values,
            vectors: eig.vectors,
        }
    }

    fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = b.len();
        let scale = self.values.last().copied().unwrap_or(1.0).abs().max(1e-300);
        let mut x = vec![0.0; n];
        for k in 0..n {
            let lam = self.values[k];
            if lam <= 1e-10 * scale {
                continue; // null space component
            }
            let vk = self.vectors.column(k);
            let c = vecops::dot(&vk, b) / lam;
            vecops::axpy(c, &vk, &mut x);
        }
        x
    }
}

/// A built AMG hierarchy; apply with [`AmgHierarchy::v_cycle`] or use it
/// as a [`Preconditioner`].
pub struct AmgHierarchy {
    levels: Vec<Level>,
    coarse: CoarseSolve,
    num_nodes: usize,
}

impl std::fmt::Debug for AmgHierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AmgHierarchy")
            .field("num_nodes", &self.num_nodes)
            .field("levels", &(self.levels.len() + 1))
            .finish()
    }
}

impl AmgHierarchy {
    /// Build the hierarchy for a connected graph.
    ///
    /// # Panics
    /// Panics on an empty graph.
    pub fn build(g: &Graph, opts: &AmgOptions) -> Self {
        assert!(g.num_nodes() > 0, "amg: empty graph");
        let mut levels = Vec::new();
        let mut current = g.clone();
        for _ in 0..opts.max_levels {
            if current.num_nodes() <= opts.coarsest_size {
                break;
            }
            let agg = aggregate(&current);
            let num_coarse = agg.num_aggregates;
            if num_coarse as f64 > opts.min_shrink * current.num_nodes() as f64 {
                break; // coarsening stalled
            }
            let coarse = contract(&current, &agg.aggregate_of, num_coarse);
            let lap = laplacian_csr(&current);
            levels.push(Level {
                smoother: GaussSeidelPreconditioner::new(lap.clone(), opts.smoothing_sweeps),
                laplacian: lap,
                aggregate_of: agg.aggregate_of,
                num_coarse,
            });
            current = coarse;
        }
        let coarse_lap = laplacian_csr(&current);
        AmgHierarchy {
            coarse: CoarseSolve::new(&coarse_lap),
            levels,
            num_nodes: g.num_nodes(),
        }
    }

    /// Number of levels including the coarsest.
    pub fn num_levels(&self) -> usize {
        self.levels.len() + 1
    }

    /// Node counts per level, finest first.
    pub fn level_sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.levels.iter().map(|l| l.laplacian.nrows()).collect();
        sizes.push(self.levels.last().map_or(self.num_nodes, |l| l.num_coarse));
        sizes
    }

    /// One V-cycle approximately solving `L x = b`; returns mean-zero `x`.
    ///
    /// # Panics
    /// Panics if `b.len()` differs from the finest level size.
    pub fn v_cycle(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.num_nodes, "v_cycle: rhs length mismatch");
        let mut bp = b.to_vec();
        vecops::project_out_mean(&mut bp);
        let mut x = self.cycle(0, &bp);
        vecops::project_out_mean(&mut x);
        x
    }

    fn cycle(&self, level: usize, b: &[f64]) -> Vec<f64> {
        if level == self.levels.len() {
            return self.coarse.solve(b);
        }
        let lvl = &self.levels[level];
        let n = b.len();
        let mut x = vec![0.0; n];
        // Pre-smooth (forward sweeps).
        lvl.smoother.sweep_forward(b, &mut x);
        // Residual and restriction.
        let mut r = lvl.laplacian.matvec(&x);
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        let mut rc = vec![0.0; lvl.num_coarse];
        for i in 0..n {
            rc[lvl.aggregate_of[i]] += r[i];
        }
        // Coarse correction.
        let ec = self.cycle(level + 1, &rc);
        for i in 0..n {
            x[i] += ec[lvl.aggregate_of[i]];
        }
        // Post-smooth (backward sweeps, keeping the cycle symmetric).
        lvl.smoother.sweep_backward(b, &mut x);
        x
    }
}

impl Preconditioner for AmgHierarchy {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let x = self.v_cycle(r);
        z.copy_from_slice(&x);
    }
}

struct Aggregation {
    aggregate_of: Vec<usize>,
    num_aggregates: usize,
}

/// Greedy seed-based aggregation: every unaggregated node swallows its
/// unaggregated neighbors; leftovers join their strongest neighbor.
fn aggregate(g: &Graph) -> Aggregation {
    let n = g.num_nodes();
    let adj = AdjacencyCsr::build(g);
    let mut agg = vec![usize::MAX; n];
    let mut num = 0usize;
    // Pass 1: seeds with fully unaggregated neighborhoods.
    for u in 0..n {
        if agg[u] != usize::MAX {
            continue;
        }
        if adj.neighbors(u).any(|(v, _, _)| agg[v] != usize::MAX) {
            continue;
        }
        agg[u] = num;
        for (v, _, _) in adj.neighbors(u) {
            agg[v] = num;
        }
        num += 1;
    }
    // Pass 2: join the strongest aggregated neighbor.
    for u in 0..n {
        if agg[u] != usize::MAX {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for (v, w, _) in adj.neighbors(u) {
            if agg[v] != usize::MAX && best.is_none_or(|(_, bw)| w > bw) {
                best = Some((agg[v], w));
            }
        }
        match best {
            Some((a, _)) => agg[u] = a,
            None => {
                // Isolated node: its own aggregate.
                agg[u] = num;
                num += 1;
            }
        }
    }
    Aggregation {
        aggregate_of: agg,
        num_aggregates: num,
    }
}

/// Contract a graph along an aggregation map (Galerkin coarse Laplacian).
fn contract(g: &Graph, aggregate_of: &[usize], num_coarse: usize) -> Graph {
    let mut coarse = Graph::new(num_coarse);
    for e in g.edges() {
        let (a, b) = (aggregate_of[e.u], aggregate_of[e.v]);
        if a != b {
            coarse.add_edge(a, b, e.weight);
        }
    }
    coarse
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_linalg::cg::{pcg_solve, CgOptions};
    use sgl_linalg::{ProjectedOperator, Rng};

    fn grid_graph(nx: usize, ny: usize) -> Graph {
        let id = |i: usize, j: usize| i * ny + j;
        let mut edges = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                if i + 1 < nx {
                    edges.push((id(i, j), id(i + 1, j), 1.0));
                }
                if j + 1 < ny {
                    edges.push((id(i, j), id(i, j + 1), 1.0));
                }
            }
        }
        Graph::from_edges(nx * ny, edges)
    }

    #[test]
    fn hierarchy_coarsens() {
        let g = grid_graph(30, 30);
        let h = AmgHierarchy::build(&g, &AmgOptions::default());
        assert!(h.num_levels() >= 2);
        let sizes = h.level_sizes();
        assert_eq!(sizes[0], 900);
        for w in sizes.windows(2) {
            assert!(w[1] < w[0], "sizes must strictly decrease: {sizes:?}");
        }
    }

    #[test]
    fn v_cycle_reduces_residual() {
        let g = grid_graph(20, 20);
        let l = laplacian_csr(&g);
        let h = AmgHierarchy::build(&g, &AmgOptions::default());
        let mut rng = Rng::seed_from_u64(3);
        let mut b = rng.normal_vec(400);
        vecops::project_out_mean(&mut b);
        let x = h.v_cycle(&b);
        let lx = l.matvec(&x);
        let mut r = vecops::sub(&b, &lx);
        vecops::project_out_mean(&mut r);
        assert!(
            vecops::norm2(&r) < 0.5 * vecops::norm2(&b),
            "one V-cycle should cut the residual at least in half"
        );
    }

    #[test]
    fn amg_pcg_converges_fast_on_meshes() {
        let g = grid_graph(25, 25);
        let l = laplacian_csr(&g);
        let h = AmgHierarchy::build(&g, &AmgOptions::default());
        let mut rng = Rng::seed_from_u64(4);
        let mut b = rng.normal_vec(g.num_nodes());
        vecops::project_out_mean(&mut b);
        let opts = CgOptions {
            rtol: 1e-10,
            project_mean: true,
            ..CgOptions::default()
        };
        let p = ProjectedOperator::new(&l);
        let sol = pcg_solve(&p, &h, &b, &opts).unwrap();
        assert!(
            sol.iterations <= 40,
            "AMG-PCG took {} iterations",
            sol.iterations
        );
        let lx = l.matvec(&sol.x);
        let mut r = vecops::sub(&b, &lx);
        vecops::project_out_mean(&mut r);
        assert!(vecops::norm2(&r) / vecops::norm2(&b) < 1e-8);
    }

    #[test]
    fn small_graph_is_direct_solve() {
        let g = grid_graph(3, 3);
        let h = AmgHierarchy::build(&g, &AmgOptions::default());
        assert_eq!(h.num_levels(), 1); // below coarsest_size: pure dense solve
        let l = laplacian_csr(&g);
        let b = {
            let mut v = vec![0.0; 9];
            v[0] = 1.0;
            v[8] = -1.0;
            v
        };
        let x = h.v_cycle(&b);
        let lx = l.matvec(&x);
        for i in 0..9 {
            assert!((lx[i] - b[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn aggregation_covers_all_nodes() {
        let g = grid_graph(10, 7);
        let a = aggregate(&g);
        assert!(a.aggregate_of.iter().all(|&x| x < a.num_aggregates));
        assert!(a.num_aggregates < 70);
        assert!(a.num_aggregates > 0);
    }

    #[test]
    fn contraction_preserves_total_boundary_weight() {
        let g = grid_graph(6, 6);
        let a = aggregate(&g);
        let c = contract(&g, &a.aggregate_of, a.num_aggregates);
        // Total coarse weight equals total fine weight across aggregates.
        let cross: f64 = g
            .edges()
            .iter()
            .filter(|e| a.aggregate_of[e.u] != a.aggregate_of[e.v])
            .map(|e| e.weight)
            .sum();
        let coarse_total: f64 = c.edges().iter().map(|e| e.weight).sum();
        assert!((cross - coarse_total).abs() < 1e-12);
    }
}
