//! Fast graph-Laplacian solvers for the SGL reproduction — and the
//! pluggable solve layer the pipeline consumes them through.
//!
//! SGL's scalability rests on nearly-linear-time solves of `L x = b`
//! (Koutis–Miller–Peng \[7\], SAMG \[14\]). The pipeline needs them in four
//! places: generating voltage measurements (`L* x = y` on the
//! ground-truth graph), spectral edge scaling (`L x̃ = y` on the learned
//! graph), shift-invert eigenvalue computation, and the JL effective-
//! resistance sketch. This crate provides both the numerical kernels and
//! the API the pipeline talks to:
//!
//! # The solve layer (what callers use)
//!
//! * [`SolverPolicy`] — plain-data description of *how* to solve:
//!   method, tolerance, iteration cap, handle-reuse mode. Threads
//!   through configuration (e.g. `SglConfig`) so every solve is
//!   user-controllable end to end.
//! * [`SolverBackend`] — object-safe factory: build-for-graph. Two
//!   implementations: [`IterativeBackend`] (the PCG/AMG/tree facade)
//!   and [`DenseCholeskyBackend`] (exact small-N reference that factors
//!   `L + (1/N)·11ᵀ` once).
//! * [`SolverHandle`] — a prepared solver for one fixed graph:
//!   [`solve`](SolverHandle::solve), multi-RHS
//!   [`solve_batch`](SolverHandle::solve_batch), and cumulative
//!   [`stats`](SolverHandle::stats). Shared across stages via `Arc`.
//! * [`SolverContext`] — a session-owned, revision-tracked cache: one
//!   handle per learned-graph revision, invalidated on edge insertion.
//!
//! # The kernels (what the backends are built from)
//!
//! * [`tree_solver`] — exact `O(N)` elimination on spanning trees;
//! * [`preconditioner`] / [`ichol`] — Jacobi, symmetric Gauss–Seidel,
//!   IC(0) and spanning-tree preconditioners (support-graph
//!   preconditioning: the learned graph *is* a tree plus a few off-tree
//!   edges, so a tree solve is a near-ideal preconditioner for it);
//! * [`amg`] — unsmoothed-aggregation algebraic multigrid whose Galerkin
//!   coarse operators are literal graph contractions;
//! * [`LaplacianSolver`] — the method-picking facade running projected
//!   PCG to a requested tolerance ([`IterativeBackend`] wraps it).
//!
//! # Example
//!
//! ```
//! use sgl_graph::Graph;
//! use sgl_solver::{PolicyMethod, SolverPolicy};
//!
//! let g = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)]);
//! // Policy-driven: validate, pick a backend, build a reusable handle.
//! let handle = SolverPolicy::default()
//!     .with_method(PolicyMethod::Auto)
//!     .build_handle(&g)
//!     .unwrap();
//! // Push 1 A into node 0, draw 1 A from node 2.
//! let x = handle.solve(&[1.0, 0.0, -1.0]).unwrap();
//! // Voltage drop across the two unit resistors is 1 V each.
//! assert!(((x[0] - x[2]) - 2.0).abs() < 1e-8);
//! // Batched right-hand sides go through one call.
//! let xs = handle
//!     .solve_batch(&[vec![1.0, 0.0, -1.0], vec![0.0, 1.0, -1.0]])
//!     .unwrap();
//! assert_eq!(xs.len(), 2);
//! assert_eq!(handle.stats().solves, 3);
//! ```

pub mod amg;
pub mod backend;
pub mod context;
pub mod fault;
pub mod ichol;
pub mod laplacian_solver;
pub mod preconditioner;
pub mod tree_solver;

pub use amg::{AmgHierarchy, AmgOptions};
pub use backend::{
    DenseCholeskyBackend, IterativeBackend, PolicyMethod, ReuseMode, SolveStats, SolverBackend,
    SolverHandle, SolverPolicy,
};
pub use context::{RevisionStats, SolverContext};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use ichol::IncompleteCholesky;
pub use laplacian_solver::{
    LaplacianSolver, SolveScratch, SolverMethod, SolverOptions, SolverStats,
};
pub use preconditioner::{GaussSeidelPreconditioner, TreePreconditioner};
pub use tree_solver::TreeSolver;
