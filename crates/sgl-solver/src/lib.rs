//! Fast graph-Laplacian solvers for the SGL reproduction.
//!
//! SGL needs Laplacian solves in three places: generating the voltage
//! measurements (`L* x = y` on the ground-truth graph), the spectral edge
//! scaling step (`L x̃ = y` on the learned graph), and shift-invert
//! eigenvalue computations. The paper leans on nearly-linear-time SDD
//! solvers (Koutis–Miller–Peng [7], SAMG [14]); this crate provides the
//! equivalents we built from scratch:
//!
//! * [`tree_solver`] — exact `O(N)` elimination on spanning trees;
//! * [`preconditioner`] / [`ichol`] — Jacobi, symmetric Gauss–Seidel,
//!   IC(0) and spanning-tree preconditioners (support-graph preconditioning: the
//!   learned graph *is* a tree plus a few off-tree edges, so a tree solve
//!   is a near-ideal preconditioner for it);
//! * [`amg`] — unsmoothed-aggregation algebraic multigrid whose Galerkin
//!   coarse operators are literal graph contractions;
//! * [`LaplacianSolver`] — the user-facing facade that picks a method and
//!   runs projected PCG to a requested tolerance.
//!
//! # Example
//!
//! ```
//! use sgl_graph::Graph;
//! use sgl_solver::{LaplacianSolver, SolverOptions};
//!
//! let g = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)]);
//! let solver = LaplacianSolver::new(&g, SolverOptions::default()).unwrap();
//! // Push 1 A into node 0, draw 1 A from node 2.
//! let x = solver.solve(&[1.0, 0.0, -1.0]).unwrap();
//! // Voltage drop across the two unit resistors is 1 V each.
//! assert!(((x[0] - x[2]) - 2.0).abs() < 1e-8);
//! ```

pub mod amg;
pub mod ichol;
pub mod laplacian_solver;
pub mod preconditioner;
pub mod tree_solver;

pub use amg::{AmgHierarchy, AmgOptions};
pub use ichol::IncompleteCholesky;
pub use laplacian_solver::{LaplacianSolver, SolverMethod, SolverOptions, SolverStats};
pub use preconditioner::{GaussSeidelPreconditioner, TreePreconditioner};
pub use tree_solver::TreeSolver;
