//! The pluggable solve layer: [`SolverPolicy`] → [`SolverBackend`] →
//! [`SolverHandle`].
//!
//! SGL's pipeline solves `L x = b` in four different stages (measurement
//! generation, edge scaling, shift-invert embedding, resistance
//! sketching). Instead of each stage constructing its own
//! [`LaplacianSolver`], a stage asks a *backend* to build a *handle* for
//! the current graph and reuses it for every right-hand side — and a
//! [`SolverPolicy`] is the plain-data description of which backend to
//! build and how hard to run it, so the choice threads through
//! configuration instead of being hard-coded at call sites.
//!
//! Both traits are object-safe: sessions store `Box<dyn SolverBackend>`
//! and share `Arc<dyn SolverHandle>` across stages.

use crate::laplacian_solver::{LaplacianSolver, SolveScratch, SolverMethod, SolverOptions};
use sgl_graph::laplacian::laplacian_csr;
use sgl_graph::traversal::is_connected;
use sgl_graph::Graph;
use sgl_linalg::{par, vecops, CholeskyFactor, LinalgError, Preconditioner};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Cumulative statistics of a [`SolverHandle`] over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolveStats {
    /// Right-hand sides solved (batch members count individually).
    pub solves: usize,
    /// [`SolverHandle::solve_batch`] calls.
    pub batches: usize,
    /// Cumulative inner (PCG) iterations; 0 for direct backends.
    pub iterations: usize,
    /// Relative residual of the most recent solve; 0 for direct backends.
    pub last_relative_residual: f64,
}

impl SolveStats {
    /// Fold a later snapshot into this one: counters add, and the later
    /// snapshot's residual becomes the "most recent" one if it recorded
    /// any solve at all.
    pub fn absorb(&mut self, later: &SolveStats) {
        self.solves += later.solves;
        self.batches += later.batches;
        self.iterations += later.iterations;
        if later.solves > 0 {
            self.last_relative_residual = later.last_relative_residual;
        }
    }
}

/// Interior-mutable stat counters (solves take `&self`).
#[derive(Debug, Default)]
pub(crate) struct StatCell {
    solves: AtomicUsize,
    batches: AtomicUsize,
    iterations: AtomicUsize,
    last_residual_bits: AtomicU64,
}

impl StatCell {
    pub(crate) fn record(&self, rhs: usize, iterations: usize, residual: f64) {
        self.solves.fetch_add(rhs, Ordering::Relaxed);
        self.iterations.fetch_add(iterations, Ordering::Relaxed);
        self.last_residual_bits
            .store(residual.to_bits(), Ordering::Relaxed);
        // Mirror into the unified metrics registry. Calls are per-solve
        // (post-join, in RHS order), so totals are bit-stable across thread
        // counts; gated on the recorder, so the disabled path stays a single
        // relaxed load inside `count`/`observe`.
        sgl_trace::count("solver.solves", rhs as u64);
        sgl_trace::count("solver.pcg_iterations_total", iterations as u64);
        if iterations > 0 {
            sgl_trace::observe("solver.pcg_iterations", iterations as u64);
        }
        if residual > 0.0 && residual.is_finite() {
            // Histogram of achieved accuracy in bits: -log2(residual).
            let bits = (-residual.log2()).clamp(0.0, 1024.0) as u64;
            sgl_trace::observe("solver.residual_bits", bits);
        }
    }

    pub(crate) fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        sgl_trace::count("solver.batches", 1);
    }

    pub(crate) fn snapshot(&self) -> SolveStats {
        SolveStats {
            solves: self.solves.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            iterations: self.iterations.load(Ordering::Relaxed),
            last_relative_residual: f64::from_bits(self.last_residual_bits.load(Ordering::Relaxed)),
        }
    }
}

/// A prepared, reusable solver for `L x = b` on one fixed graph.
///
/// Solutions are mean-zero (the canonical representative in the
/// Laplacian's quotient space). Handles are `Send + Sync` and cheap to
/// share via `Arc`: a session builds one per learned-graph revision and
/// every stage solves through it.
pub trait SolverHandle: Send + Sync {
    /// Number of nodes of the prepared graph.
    fn num_nodes(&self) -> usize;

    /// Name of the concrete method in use (after any `Auto` resolution).
    fn method_name(&self) -> &'static str;

    /// Solve `L x = b`, returning the mean-zero solution.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotConverged`] when an iterative backend
    /// hits its cap and a dimension error for a wrong-sized `b`.
    fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError>;

    /// Solve `L X = B` for many right-hand sides in one call. Every
    /// RHS reuses the handle's prepared setup (factorization or
    /// preconditioner) — that amortization comes from the handle, not
    /// the batch — and routing multi-RHS work through this single entry
    /// point is what lets future backends add genuinely blocked solves
    /// without touching call sites. Current implementations solve the
    /// batch one RHS at a time.
    ///
    /// # Errors
    /// See [`SolverHandle::solve`].
    fn solve_batch(&self, rhs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, LinalgError>;

    /// Cumulative solve statistics for this handle.
    fn stats(&self) -> SolveStats;

    /// The handle's prepared PCG preconditioner, if it has one that is
    /// meaningful *as a preconditioner on its own* (tree solve, IC(0)
    /// factors, AMG V-cycle, Jacobi diagonal). Solver revisions use it
    /// to keep preconditioning PCG against a slightly updated operator
    /// — the stale-preconditioner amortization — so the setup keeps
    /// earning across low-rank graph changes. Direct backends return
    /// `None` (their amortization path is the Woodbury-corrected base
    /// solve instead).
    fn stale_preconditioner(&self) -> Option<Arc<dyn Preconditioner + Send + Sync>> {
        None
    }
}

/// Builds [`SolverHandle`]s for graphs. Object-safe so a policy can
/// select among backends at runtime.
pub trait SolverBackend: std::fmt::Debug + Send + Sync {
    /// Short backend name (for logs and traces).
    fn name(&self) -> &'static str;

    /// Prepare a handle for the given connected graph.
    ///
    /// # Errors
    /// Returns [`LinalgError::InvalidInput`] for graphs the backend
    /// cannot prepare (empty, disconnected, too large for a dense
    /// reference backend, non-tree for `TreeDirect`).
    fn build(&self, graph: &Graph) -> Result<Arc<dyn SolverHandle>, LinalgError>;
}

// ---------------------------------------------------------------------------
// Iterative backend: the existing PCG/AMG/tree facade.
// ---------------------------------------------------------------------------

/// [`SolverBackend`] over the [`LaplacianSolver`] facade (exact tree
/// solves, tree-/AMG-/Jacobi-/IC(0)-preconditioned PCG).
#[derive(Debug, Clone, Default)]
pub struct IterativeBackend {
    /// Facade options (method selection, tolerance, iteration cap).
    pub opts: SolverOptions,
    /// Worker threads for `solve_batch` fan-out (0 = ambient, 1 = serial).
    pub parallelism: usize,
}

impl IterativeBackend {
    /// Backend with explicit facade options (ambient parallelism).
    pub fn new(opts: SolverOptions) -> Self {
        IterativeBackend {
            opts,
            parallelism: 0,
        }
    }
}

impl SolverBackend for IterativeBackend {
    fn name(&self) -> &'static str {
        "iterative"
    }

    fn build(&self, graph: &Graph) -> Result<Arc<dyn SolverHandle>, LinalgError> {
        let solver = LaplacianSolver::new(graph, self.opts.clone())?;
        Ok(Arc::new(IterativeHandle {
            solver,
            parallelism: self.parallelism,
            stats: StatCell::default(),
        }))
    }
}

struct IterativeHandle {
    solver: LaplacianSolver,
    parallelism: usize,
    stats: StatCell,
}

impl SolverHandle for IterativeHandle {
    fn num_nodes(&self) -> usize {
        self.solver.num_nodes()
    }

    fn method_name(&self) -> &'static str {
        match self.solver.method() {
            SolverMethod::Auto => "auto",
            SolverMethod::TreeDirect => "tree-direct",
            SolverMethod::TreePcg => "tree-pcg",
            SolverMethod::AmgPcg => "amg-pcg",
            SolverMethod::JacobiPcg => "jacobi-pcg",
            SolverMethod::IcholPcg => "ichol-pcg",
        }
    }

    fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let _sp = sgl_trace::span!("pcg_solve");
        let (x, st) = self.solver.solve_with_stats(b)?;
        self.stats.record(1, st.iterations, st.relative_residual);
        Ok(x)
    }

    fn solve_batch(&self, rhs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, LinalgError> {
        let _sp = sgl_trace::span!("solve_batch", count = rhs.len());
        self.stats.record_batch();
        let n = self.solver.num_nodes();
        // Fan out across right-hand sides; every solve is independent and
        // runs the identical serial kernel over a per-worker scratch, so
        // results match the serial path exactly. Nested parallelism (the
        // sparse kernels inside each solve) collapses to serial inside
        // the region — one level of fan-out, no oversubscription.
        let solved: Vec<(Vec<f64>, crate::SolverStats)> =
            par::with_threads_hint(self.parallelism, || {
                par::try_map_chunked(rhs.len(), 1, |range| {
                    let mut scratch = SolveScratch::new();
                    range
                        .map(|i| {
                            let mut x = vec![0.0; n];
                            let st = self.solver.solve_into(&rhs[i], &mut x, &mut scratch)?;
                            Ok((x, st))
                        })
                        .collect()
                })
            })?;
        // Stats are recorded after the join, in RHS order, so counters
        // and the "last" residual do not depend on thread scheduling.
        let mut out = Vec::with_capacity(solved.len());
        for (x, st) in solved {
            self.stats.record(1, st.iterations, st.relative_residual);
            out.push(x);
        }
        Ok(out)
    }

    fn stats(&self) -> SolveStats {
        self.stats.snapshot()
    }

    fn stale_preconditioner(&self) -> Option<Arc<dyn Preconditioner + Send + Sync>> {
        self.solver.preconditioner()
    }
}

// ---------------------------------------------------------------------------
// Dense Cholesky backend: small-N exact reference.
// ---------------------------------------------------------------------------

/// Dense Cholesky reference backend: factors `L + (1/N)·11ᵀ` (SPD on a
/// connected graph) once, then every solve is two exact triangular
/// sweeps — `O(N²)` per RHS with the `O(N³)` factorization paid once
/// per handle, which favors many-RHS workloads on small graphs.
/// `O(N²)` memory, so guarded by `max_nodes`; this is the ground truth
/// the iterative backends are tested against.
#[derive(Debug, Clone, Copy)]
pub struct DenseCholeskyBackend {
    /// Refuse graphs larger than this (0 disables the guard).
    pub max_nodes: usize,
    /// Worker threads for `solve_batch` fan-out (0 = ambient, 1 = serial).
    pub parallelism: usize,
}

impl Default for DenseCholeskyBackend {
    fn default() -> Self {
        DenseCholeskyBackend {
            max_nodes: 4096,
            parallelism: 0,
        }
    }
}

impl DenseCholeskyBackend {
    /// Backend with an explicit node-count guard (0 = unlimited).
    pub fn with_limit(max_nodes: usize) -> Self {
        DenseCholeskyBackend {
            max_nodes,
            parallelism: 0,
        }
    }
}

impl SolverBackend for DenseCholeskyBackend {
    fn name(&self) -> &'static str {
        "dense-cholesky"
    }

    fn build(&self, graph: &Graph) -> Result<Arc<dyn SolverHandle>, LinalgError> {
        let n = graph.num_nodes();
        if n == 0 {
            return Err(LinalgError::InvalidInput("empty graph".into()));
        }
        if self.max_nodes != 0 && n > self.max_nodes {
            return Err(LinalgError::InvalidInput(format!(
                "DenseCholeskyBackend limited to {} nodes, got {n}; raise the \
                 limit or use an iterative backend",
                self.max_nodes
            )));
        }
        if !is_connected(graph) {
            return Err(LinalgError::InvalidInput(
                "laplacian solver requires a connected graph".into(),
            ));
        }
        // L + (1/n)·11ᵀ is SPD and agrees with L on the mean-zero
        // subspace, so solving against it with a mean-zero b yields the
        // mean-zero Laplacian solution directly.
        let mut dense = laplacian_csr(graph).to_dense();
        let shift = 1.0 / n as f64;
        for i in 0..n {
            for j in 0..n {
                let v = dense.get(i, j) + shift;
                dense.set(i, j, v);
            }
        }
        let chol = CholeskyFactor::compute(&dense)?;
        Ok(Arc::new(DenseCholeskyHandle {
            chol,
            num_nodes: n,
            parallelism: self.parallelism,
            stats: StatCell::default(),
        }))
    }
}

struct DenseCholeskyHandle {
    chol: CholeskyFactor,
    num_nodes: usize,
    parallelism: usize,
    stats: StatCell,
}

impl DenseCholeskyHandle {
    fn solve_one(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.num_nodes {
            return Err(LinalgError::DimensionMismatch {
                context: "laplacian solve rhs",
                expected: self.num_nodes,
                actual: b.len(),
            });
        }
        let mut rhs = b.to_vec();
        vecops::project_out_mean(&mut rhs);
        let mut x = self.chol.solve(&rhs);
        vecops::project_out_mean(&mut x);
        Ok(x)
    }
}

impl SolverHandle for DenseCholeskyHandle {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn method_name(&self) -> &'static str {
        "dense-cholesky"
    }

    fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let _sp = sgl_trace::span!("dense_solve");
        let x = self.solve_one(b)?;
        self.stats.record(1, 0, 0.0);
        Ok(x)
    }

    fn solve_batch(&self, rhs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, LinalgError> {
        let _sp = sgl_trace::span!("solve_batch", count = rhs.len());
        self.stats.record_batch();
        // Independent triangular sweeps per RHS: fan out like the
        // iterative handle (results are per-RHS exact either way).
        let out = par::with_threads_hint(self.parallelism, || {
            par::try_map_indexed(rhs.len(), 1, |i| self.solve_one(&rhs[i]))
        })?;
        self.stats.record(rhs.len(), 0, 0.0);
        Ok(out)
    }

    fn stats(&self) -> SolveStats {
        self.stats.snapshot()
    }
}

// ---------------------------------------------------------------------------
// SolverPolicy: the plain-data, config-threadable description.
// ---------------------------------------------------------------------------

/// Method selection of a [`SolverPolicy`] — the iterative facade's
/// methods plus the dense Cholesky reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyMethod {
    /// Let the facade pick: tree solve for trees, tree-PCG for
    /// near-trees, AMG-PCG otherwise.
    #[default]
    Auto,
    /// Exact `O(N)` elimination (graph must be a tree).
    TreeDirect,
    /// PCG preconditioned by a maximum-spanning-tree solve.
    TreePcg,
    /// PCG preconditioned by an aggregation-AMG V-cycle.
    AmgPcg,
    /// PCG preconditioned by the Laplacian diagonal.
    JacobiPcg,
    /// PCG preconditioned by a shifted IC(0) factorization.
    IcholPcg,
    /// Dense Cholesky of `L + (1/N)·11ᵀ` — exact, small-N reference.
    DenseCholesky,
}

impl PolicyMethod {
    /// Short stable name (for logs, traces, and downgrade events).
    pub fn name(self) -> &'static str {
        match self {
            PolicyMethod::Auto => "auto",
            PolicyMethod::TreeDirect => "tree-direct",
            PolicyMethod::TreePcg => "tree-pcg",
            PolicyMethod::AmgPcg => "amg-pcg",
            PolicyMethod::JacobiPcg => "jacobi-pcg",
            PolicyMethod::IcholPcg => "ichol-pcg",
            PolicyMethod::DenseCholesky => "dense-cholesky",
        }
    }

    /// The facade method this policy method maps to (`None` for the
    /// dense reference, which bypasses the facade).
    pub fn solver_method(self) -> Option<SolverMethod> {
        match self {
            PolicyMethod::Auto => Some(SolverMethod::Auto),
            PolicyMethod::TreeDirect => Some(SolverMethod::TreeDirect),
            PolicyMethod::TreePcg => Some(SolverMethod::TreePcg),
            PolicyMethod::AmgPcg => Some(SolverMethod::AmgPcg),
            PolicyMethod::JacobiPcg => Some(SolverMethod::JacobiPcg),
            PolicyMethod::IcholPcg => Some(SolverMethod::IcholPcg),
            PolicyMethod::DenseCholesky => None,
        }
    }
}

/// When a cached handle may be reused across solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReuseMode {
    /// One handle per graph revision, shared by every stage until the
    /// graph changes (the production mode).
    #[default]
    PerRevision,
    /// Rebuild on every request (debugging / A-B measurement of setup
    /// cost; the pre-redesign behavior).
    PerCall,
}

/// The user-controllable description of how the pipeline solves
/// Laplacian systems: which method, to what tolerance, under which
/// iteration cap, and whether handles are reused across a graph
/// revision. Plain data — thread it through `SglConfig` and hand it to a
/// [`SolverContext`](crate::SolverContext).
#[derive(Debug, Clone, PartialEq)]
pub struct SolverPolicy {
    /// Backend/method selection.
    pub method: PolicyMethod,
    /// Relative residual tolerance for iterative methods.
    pub rtol: f64,
    /// Iteration cap for iterative methods.
    pub max_iter: usize,
    /// Handle reuse across graph revisions.
    pub reuse: ReuseMode,
    /// Node-count guard for [`PolicyMethod::DenseCholesky`] (0 = off).
    pub dense_max_nodes: usize,
    /// Worker threads for `solve_batch` fan-out across right-hand sides.
    /// `0` (the default) inherits the ambient
    /// [`sgl_linalg::par`] thread count — all
    /// available cores unless a scope or environment override says
    /// otherwise; `1` pins the guaranteed-serial path (bit-identical
    /// results either way).
    pub parallelism: usize,
    /// Cap on the accumulated low-rank delta a
    /// [`SolverContext`](crate::SolverContext) may absorb through
    /// [`apply_deltas`](crate::SolverContext::apply_deltas) before it
    /// falls back to a full refactorization: once the number of distinct
    /// delta edges since the last full build would exceed this, the next
    /// request rebuilds instead of stacking another Woodbury correction.
    /// `0` disables the incremental path entirely (every delta batch
    /// invalidates — the pre-revision behavior).
    pub max_delta_rank: usize,
    /// Refresh trigger on iteration blow-up: when a delta-corrected
    /// solve's outer PCG takes more than `refresh_iter_factor ×` the
    /// iterations of the first corrected solve after the last full
    /// build, the context schedules a refactorization (the stale base
    /// factorization has drifted too far from the current operator).
    /// Must be ≥ 1; larger tolerates more drift before refreshing.
    pub refresh_iter_factor: f64,
}

impl Default for SolverPolicy {
    fn default() -> Self {
        SolverPolicy {
            method: PolicyMethod::Auto,
            rtol: 1e-10,
            max_iter: 10_000,
            reuse: ReuseMode::PerRevision,
            dense_max_nodes: 4096,
            parallelism: 0,
            max_delta_rank: 64,
            refresh_iter_factor: 4.0,
        }
    }
}

impl SolverPolicy {
    /// Validate the policy.
    ///
    /// # Errors
    /// Returns [`LinalgError::InvalidInput`] for a non-finite or
    /// non-positive tolerance or a zero iteration cap.
    pub fn validate(&self) -> Result<(), LinalgError> {
        if !self.rtol.is_finite() || self.rtol <= 0.0 {
            return Err(LinalgError::InvalidInput(format!(
                "solver rtol must be finite and positive, got {}",
                self.rtol
            )));
        }
        if self.max_iter == 0 {
            return Err(LinalgError::InvalidInput(
                "solver max_iter must be at least 1".into(),
            ));
        }
        if !self.refresh_iter_factor.is_finite() || self.refresh_iter_factor < 1.0 {
            return Err(LinalgError::InvalidInput(format!(
                "solver refresh_iter_factor must be finite and at least 1, got {}",
                self.refresh_iter_factor
            )));
        }
        Ok(())
    }

    /// Instantiate the backend this policy describes.
    pub fn backend(&self) -> Box<dyn SolverBackend> {
        match self.method.solver_method() {
            Some(method) => Box::new(IterativeBackend {
                opts: SolverOptions {
                    method,
                    rtol: self.rtol,
                    max_iter: self.max_iter,
                    ..SolverOptions::default()
                },
                parallelism: self.parallelism,
            }),
            None => Box::new(DenseCholeskyBackend {
                max_nodes: self.dense_max_nodes,
                parallelism: self.parallelism,
            }),
        }
    }

    /// Validate, then build a handle for `graph` in one step (the
    /// convenience path for standalone utilities; sessions go through a
    /// [`SolverContext`](crate::SolverContext) instead).
    ///
    /// # Errors
    /// See [`SolverPolicy::validate`] and [`SolverBackend::build`].
    pub fn build_handle(&self, graph: &Graph) -> Result<Arc<dyn SolverHandle>, LinalgError> {
        self.validate()?;
        self.backend().build(graph)
    }

    /// Builder-style setter for the method.
    #[must_use]
    pub fn with_method(mut self, method: PolicyMethod) -> Self {
        self.method = method;
        self
    }

    /// Builder-style setter for the tolerance.
    #[must_use]
    pub fn with_rtol(mut self, rtol: f64) -> Self {
        self.rtol = rtol;
        self
    }

    /// Builder-style setter for the iteration cap.
    #[must_use]
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Builder-style setter for the reuse mode.
    #[must_use]
    pub fn with_reuse(mut self, reuse: ReuseMode) -> Self {
        self.reuse = reuse;
        self
    }

    /// Builder-style setter for the batch-solve worker count
    /// (0 = ambient/all cores, 1 = serial).
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Builder-style setter for the delta-rank cap (0 = incremental
    /// revisions off).
    #[must_use]
    pub fn with_max_delta_rank(mut self, max_delta_rank: usize) -> Self {
        self.max_delta_rank = max_delta_rank;
        self
    }

    /// Builder-style setter for the iteration-blow-up refresh trigger.
    #[must_use]
    pub fn with_refresh_iter_factor(mut self, refresh_iter_factor: f64) -> Self {
        self.refresh_iter_factor = refresh_iter_factor;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_datasets::grid2d;
    use sgl_linalg::Rng;

    fn mean_zero_rhs(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::seed_from_u64(seed);
        let mut b = rng.normal_vec(n);
        vecops::project_out_mean(&mut b);
        b
    }

    #[test]
    fn dense_cholesky_matches_iterative() {
        let g = grid2d(7, 7);
        let b = mean_zero_rhs(49, 1);
        let dense = DenseCholeskyBackend::default().build(&g).unwrap();
        let pcg = IterativeBackend::default().build(&g).unwrap();
        let xd = dense.solve(&b).unwrap();
        let xi = pcg.solve(&b).unwrap();
        let d = vecops::sub(&xd, &xi);
        assert!(vecops::norm2(&d) < 1e-7, "backends disagree");
        assert!(vecops::mean(&xd).abs() < 1e-12);
    }

    #[test]
    fn dense_cholesky_solves_exactly() {
        let g = grid2d(6, 5);
        let b = mean_zero_rhs(30, 2);
        let h = DenseCholeskyBackend::default().build(&g).unwrap();
        let x = h.solve(&b).unwrap();
        let l = laplacian_csr(&g);
        let r = vecops::sub(&b, &l.matvec(&x));
        assert!(vecops::norm2(&r) / vecops::norm2(&b) < 1e-10);
    }

    #[test]
    fn solve_batch_matches_sequential() {
        let g = grid2d(6, 6);
        let rhs: Vec<Vec<f64>> = (0..4).map(|i| mean_zero_rhs(36, 10 + i)).collect();
        for backend in [
            Box::new(IterativeBackend::default()) as Box<dyn SolverBackend>,
            Box::new(DenseCholeskyBackend::default()),
        ] {
            let h = backend.build(&g).unwrap();
            let batch = h.solve_batch(&rhs).unwrap();
            for (b, x) in rhs.iter().zip(&batch) {
                let single = h.solve(b).unwrap();
                let d = vecops::sub(x, &single);
                assert!(
                    vecops::norm2(&d) < 1e-12,
                    "{} batch mismatch",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn parallel_batch_is_bit_identical_to_serial() {
        use sgl_linalg::par;
        let g = grid2d(9, 9);
        let rhs: Vec<Vec<f64>> = (0..6).map(|i| mean_zero_rhs(81, 30 + i)).collect();
        for method in [PolicyMethod::Auto, PolicyMethod::DenseCholesky] {
            let serial = SolverPolicy::default()
                .with_method(method)
                .with_parallelism(1)
                .build_handle(&g)
                .unwrap()
                .solve_batch(&rhs)
                .unwrap();
            for threads in [2usize, 4] {
                let h = SolverPolicy::default()
                    .with_method(method)
                    .with_parallelism(threads)
                    .build_handle(&g)
                    .unwrap();
                let par_xs = h.solve_batch(&rhs).unwrap();
                assert_eq!(par_xs, serial, "{method:?} at {threads} threads");
                // The ambient (policy 0) path under an explicit scope
                // override agrees too, and stats stay deterministic.
                let amb = SolverPolicy::default()
                    .with_method(method)
                    .build_handle(&g)
                    .unwrap();
                let amb_xs = par::with_threads(threads, || amb.solve_batch(&rhs).unwrap());
                assert_eq!(amb_xs, serial);
                assert_eq!(amb.stats().solves, rhs.len());
                assert_eq!(amb.stats().batches, 1);
            }
        }
    }

    #[test]
    fn stats_count_solves_and_batches() {
        let g = grid2d(5, 5);
        let h = IterativeBackend::default().build(&g).unwrap();
        assert_eq!(h.stats(), SolveStats::default());
        let rhs: Vec<Vec<f64>> = (0..3).map(|i| mean_zero_rhs(25, i)).collect();
        h.solve(&rhs[0]).unwrap();
        h.solve_batch(&rhs).unwrap();
        let st = h.stats();
        assert_eq!(st.solves, 4);
        assert_eq!(st.batches, 1);
        assert!(st.iterations > 0, "PCG should report iterations");
        assert!(st.last_relative_residual < 1e-9);
    }

    #[test]
    fn dense_guard_and_bad_graphs_rejected() {
        let g = grid2d(5, 5);
        assert!(DenseCholeskyBackend::with_limit(10).build(&g).is_err());
        assert!(DenseCholeskyBackend::with_limit(0).build(&g).is_ok());
        let disconnected = Graph::from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)]);
        assert!(DenseCholeskyBackend::default()
            .build(&disconnected)
            .is_err());
        assert!(IterativeBackend::default().build(&disconnected).is_err());
    }

    #[test]
    fn policy_builds_every_method() {
        let g = grid2d(5, 5);
        let b = mean_zero_rhs(25, 3);
        let reference = SolverPolicy::default()
            .with_method(PolicyMethod::DenseCholesky)
            .build_handle(&g)
            .unwrap()
            .solve(&b)
            .unwrap();
        for method in [
            PolicyMethod::Auto,
            PolicyMethod::TreePcg,
            PolicyMethod::AmgPcg,
            PolicyMethod::JacobiPcg,
            PolicyMethod::IcholPcg,
        ] {
            let h = SolverPolicy::default()
                .with_method(method)
                .build_handle(&g)
                .unwrap();
            let x = h.solve(&b).unwrap();
            let d = vecops::sub(&x, &reference);
            assert!(
                vecops::norm2(&d) < 1e-6,
                "{method:?} disagrees with dense reference"
            );
        }
    }

    #[test]
    fn policy_validation_rejects_bad_values() {
        assert!(SolverPolicy::default().with_rtol(0.0).validate().is_err());
        assert!(SolverPolicy::default()
            .with_rtol(f64::NAN)
            .validate()
            .is_err());
        assert!(SolverPolicy::default().with_max_iter(0).validate().is_err());
        assert!(SolverPolicy::default()
            .with_rtol(0.0)
            .build_handle(&grid2d(3, 3))
            .is_err());
    }

    #[test]
    fn policy_threads_tolerance_into_facade() {
        // A loose tolerance must reach the PCG loop: far fewer iterations.
        let g = grid2d(12, 12);
        let b = mean_zero_rhs(144, 4);
        let tight = SolverPolicy::default()
            .with_method(PolicyMethod::JacobiPcg)
            .build_handle(&g)
            .unwrap();
        tight.solve(&b).unwrap();
        let loose = SolverPolicy::default()
            .with_method(PolicyMethod::JacobiPcg)
            .with_rtol(1e-2)
            .build_handle(&g)
            .unwrap();
        loose.solve(&b).unwrap();
        assert!(loose.stats().iterations < tight.stats().iterations);
    }

    use sgl_graph::Graph;
}
