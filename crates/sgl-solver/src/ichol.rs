//! Zero-fill incomplete Cholesky — IC(0) — preconditioner.
//!
//! A third classical SDD preconditioner for the ablation study alongside
//! the spanning-tree solve and AMG. The factorization keeps exactly the
//! lower-triangular sparsity pattern of the input; Laplacians (singular,
//! weakly diagonally dominant) are handled with a small diagonal shift
//! that is grown geometrically on pivot breakdown, the standard
//! "shifted IC" recovery.

use sgl_linalg::{vecops, CsrMatrix, LinalgError, Preconditioner};

/// IC(0) factors of `A + αI` applied as a preconditioner.
#[derive(Debug, Clone)]
pub struct IncompleteCholesky {
    /// Strict lower triangle of `L` in CSR (row-sorted columns).
    lower: CsrMatrix,
    /// Diagonal of `L`.
    diag: Vec<f64>,
    /// The diagonal shift that made the factorization succeed.
    shift: f64,
}

impl IncompleteCholesky {
    /// Factor a symmetric matrix with the IC(0) pattern.
    ///
    /// `base_shift` is the initial diagonal shift relative to the mean
    /// diagonal magnitude (`1e-8` is a good default for Laplacians); it
    /// grows ×10 on breakdown, up to a small number of retries.
    ///
    /// # Errors
    /// Returns [`LinalgError::InvalidInput`] for a non-square or empty
    /// matrix, and [`LinalgError::NotPositiveDefinite`] (with the pivot
    /// row of the last breakdown) if the factorization keeps breaking
    /// down after every shift retry — indefinite or badly non-symmetric
    /// input, not a Laplacian. Library code never panics on bad input.
    pub fn new(a: &CsrMatrix, base_shift: f64) -> Result<Self, LinalgError> {
        if a.nrows() != a.ncols() {
            return Err(LinalgError::InvalidInput(format!(
                "ichol: square matrix required, got {}×{}",
                a.nrows(),
                a.ncols()
            )));
        }
        let n = a.nrows();
        if n == 0 {
            return Err(LinalgError::InvalidInput("ichol: empty matrix".into()));
        }
        let mean_diag = a.diagonal().iter().map(|d| d.abs()).sum::<f64>() / n as f64;
        let mut shift = base_shift.max(1e-300) * mean_diag.max(1.0);
        let mut last_pivot = 0;
        for _ in 0..20 {
            match Self::try_factor(a, shift) {
                Ok(fac) => return Ok(fac),
                Err(pivot) => last_pivot = pivot,
            }
            shift *= 10.0;
        }
        Err(LinalgError::NotPositiveDefinite { pivot: last_pivot })
    }

    /// One factorization attempt; `Err` carries the row whose pivot
    /// broke down.
    fn try_factor(a: &CsrMatrix, shift: f64) -> Result<Self, usize> {
        let n = a.nrows();
        // Work on the lower-triangular pattern row by row.
        let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut diag = vec![0.0; n];
        for i in 0..n {
            let (cols, vals) = a.row(i);
            let mut li: Vec<(usize, f64)> = Vec::new();
            let mut dii = shift;
            for (&j, &v) in cols.iter().zip(vals) {
                use std::cmp::Ordering;
                match j.cmp(&i) {
                    Ordering::Less => li.push((j, v)),
                    Ordering::Equal => dii += v,
                    Ordering::Greater => {}
                }
            }
            // l_ij = (a_ij − Σ_{k<j, pattern} l_ik l_jk) / d_jj
            for p in 0..li.len() {
                let (j, mut v) = li[p];
                // Sparse dot of row i (prefix) with row j.
                let row_j = &rows[j];
                let (mut x, mut y) = (0usize, 0usize);
                while x < p && y < row_j.len() {
                    let (cx, vx) = li[x];
                    let (cy, vy) = row_j[y];
                    match cx.cmp(&cy) {
                        std::cmp::Ordering::Equal => {
                            v -= vx * vy;
                            x += 1;
                            y += 1;
                        }
                        std::cmp::Ordering::Less => x += 1,
                        std::cmp::Ordering::Greater => y += 1,
                    }
                }
                li[p].1 = v / diag[j];
            }
            // d_ii = sqrt(a_ii − Σ l_ik²)
            let mut s = dii;
            for &(_, v) in &li {
                s -= v * v;
            }
            if s <= 0.0 || !s.is_finite() {
                return Err(i);
            }
            diag[i] = s.sqrt();
            // Store row scaled so L has unit "structure": keep l_ij as-is;
            // diag kept separately.
            rows.push(li);
        }
        let mut trips = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            for &(j, v) in row {
                trips.push((i, j, v));
            }
        }
        Ok(IncompleteCholesky {
            lower: CsrMatrix::from_triplets(n, n, &trips),
            diag,
            shift,
        })
    }

    /// The diagonal shift actually used.
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Solve `L Lᵀ z = r` (forward + backward substitution) into a
    /// caller-provided buffer, allocation-free: both sweeps run in place
    /// over `z`, so the PCG hot loop reuses its workspace vector on
    /// every application.
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn solve_into(&self, r: &[f64], z: &mut [f64]) {
        let n = self.diag.len();
        assert_eq!(r.len(), n, "ichol solve: length mismatch");
        assert_eq!(z.len(), n, "ichol solve: output length mismatch");
        // Forward: L y = r with L = lower + diag — in place (row i only
        // reads already-finalized entries j < i).
        z.copy_from_slice(r);
        for i in 0..n {
            let (cols, vals) = self.lower.row(i);
            let mut s = z[i];
            for (&j, &v) in cols.iter().zip(vals) {
                s -= v * z[j];
            }
            z[i] = s / self.diag[i];
        }
        // Backward: Lᵀ z = y. Accumulate column-wise, also in place.
        for i in (0..n).rev() {
            z[i] /= self.diag[i];
            let zi = z[i];
            let (cols, vals) = self.lower.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                z[j] -= v * zi;
            }
        }
    }

    /// Solve `L Lᵀ z = r` into a fresh vector (the convenience wrapper;
    /// hot paths go through [`solve_into`](IncompleteCholesky::solve_into)
    /// / the [`Preconditioner::apply`] scratch path instead).
    pub fn solve(&self, r: &[f64]) -> Vec<f64> {
        let mut z = vec![0.0; self.diag.len()];
        self.solve_into(r, &mut z);
        z
    }
}

impl Preconditioner for IncompleteCholesky {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        // The PCG hot loop lands here once per iteration: substitute
        // straight into the caller's scratch vector, no allocation.
        self.solve_into(r, z);
        vecops::project_out_mean(z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_graph::laplacian::laplacian_csr;
    use sgl_linalg::cg::{pcg_solve, CgOptions};
    use sgl_linalg::{ProjectedOperator, Rng};

    fn spd_tridiag(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn exact_for_tridiagonal_spd() {
        // IC(0) on a tridiagonal SPD matrix is the exact Cholesky.
        let a = spd_tridiag(20);
        let ic = IncompleteCholesky::new(&a, 1e-14).unwrap();
        let mut rng = Rng::seed_from_u64(1);
        let b = rng.normal_vec(20);
        let x = ic.solve(&b);
        let ax = a.matvec(&x);
        for i in 0..20 {
            assert!((ax[i] - b[i]).abs() < 1e-6, "i={i}");
        }
    }

    #[test]
    fn preconditions_mesh_laplacian_pcg() {
        let g = sgl_datasets::grid2d(15, 15);
        let l = laplacian_csr(&g);
        let ic = IncompleteCholesky::new(&l, 1e-8).unwrap();
        let mut rng = Rng::seed_from_u64(2);
        let mut b = rng.normal_vec(225);
        vecops::project_out_mean(&mut b);
        let opts = CgOptions {
            rtol: 1e-10,
            project_mean: true,
            ..CgOptions::default()
        };
        let p = ProjectedOperator::new(&l);
        let pre = pcg_solve(&p, &ic, &b, &opts).unwrap();
        let plain = pcg_solve(&p, &sgl_linalg::IdentityPreconditioner, &b, &opts).unwrap();
        assert!(
            pre.iterations < plain.iterations,
            "IC(0) should beat plain CG: {} vs {}",
            pre.iterations,
            plain.iterations
        );
        let lx = l.matvec(&pre.x);
        let mut r = vecops::sub(&b, &lx);
        vecops::project_out_mean(&mut r);
        assert!(vecops::norm2(&r) / vecops::norm2(&b) < 1e-8);
    }

    #[test]
    fn shift_grows_on_breakdown() {
        // A Laplacian needs at least a tiny shift (singular); the
        // factorization must still succeed.
        let g = sgl_datasets::grid2d(6, 6);
        let l = laplacian_csr(&g);
        let ic = IncompleteCholesky::new(&l, 1e-10).unwrap();
        assert!(ic.shift() > 0.0);
    }

    #[test]
    fn bad_input_is_an_error_not_a_panic() {
        // Non-square and empty matrices are invalid input.
        let rect = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]);
        assert!(matches!(
            IncompleteCholesky::new(&rect, 1e-8),
            Err(sgl_linalg::LinalgError::InvalidInput(_))
        ));
        assert!(IncompleteCholesky::new(&CsrMatrix::zeros(0, 0), 1e-8).is_err());
        // A negative-definite matrix defeats every shift retry; the
        // error carries the breakdown pivot instead of panicking.
        let neg = CsrMatrix::from_triplets(2, 2, &[(0, 0, -1e308), (1, 1, -1e308)]);
        assert!(matches!(
            IncompleteCholesky::new(&neg, 1e-8),
            Err(sgl_linalg::LinalgError::NotPositiveDefinite { .. })
        ));
    }
}
