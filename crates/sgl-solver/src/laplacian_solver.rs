//! User-facing Laplacian solver facade.

use crate::amg::{AmgHierarchy, AmgOptions};
use crate::preconditioner::TreePreconditioner;
use crate::tree_solver::TreeSolver;
use sgl_graph::laplacian::LaplacianOp;

use sgl_graph::traversal::is_connected;
use sgl_graph::Graph;
use sgl_linalg::cg::{pcg_solve_with, CgOptions, CgWorkspace};
use sgl_linalg::{vecops, JacobiPreconditioner, LinalgError, Preconditioner};
use std::sync::Arc;

/// Which solver backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverMethod {
    /// Pick automatically: exact tree solve for trees, tree-preconditioned
    /// PCG for near-trees (density ≤ 1.4), AMG-PCG otherwise.
    #[default]
    Auto,
    /// Exact `O(N)` solve (graph must be a tree).
    TreeDirect,
    /// PCG preconditioned by a maximum-spanning-tree solve.
    TreePcg,
    /// PCG preconditioned by an aggregation-AMG V-cycle.
    AmgPcg,
    /// PCG preconditioned by the Laplacian diagonal.
    JacobiPcg,
    /// PCG preconditioned by a shifted IC(0) factorization.
    IcholPcg,
}

/// Options for [`LaplacianSolver`].
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Backend selection.
    pub method: SolverMethod,
    /// Relative residual tolerance for the PCG backends.
    pub rtol: f64,
    /// PCG iteration cap.
    pub max_iter: usize,
    /// AMG construction options (used by the AMG backend).
    pub amg: AmgOptions,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            method: SolverMethod::Auto,
            rtol: 1e-10,
            max_iter: 10_000,
            amg: AmgOptions::default(),
        }
    }
}

/// Statistics from the most informative solve path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverStats {
    /// PCG iterations (0 for direct tree solves).
    pub iterations: usize,
    /// Final relative residual.
    pub relative_residual: f64,
}

/// Reusable scratch buffers for [`LaplacianSolver::solve_into`]: one per
/// worker keeps a whole batch of solves allocation-free after the first.
#[derive(Debug, Clone, Default)]
pub struct SolveScratch {
    cg: CgWorkspace,
}

impl SolveScratch {
    /// An empty scratch (buffers are sized on first use).
    pub fn new() -> Self {
        SolveScratch::default()
    }
}

enum Backend {
    TreeDirect(TreeSolver),
    Pcg {
        /// Shared so revision wrappers can keep preconditioning PCG on
        /// an *updated* operator without refactoring (see
        /// [`LaplacianSolver::preconditioner`]).
        precond: Arc<dyn Preconditioner + Send + Sync>,
    },
}

/// A prepared solver for `L x = b` on a fixed connected graph.
///
/// Solutions are always returned mean-zero (the canonical representative
/// in the Laplacian's quotient space); right-hand sides are projected onto
/// the mean-zero subspace first.
pub struct LaplacianSolver {
    op: LaplacianOp,
    backend: Backend,
    opts: SolverOptions,
    method: SolverMethod,
    num_nodes: usize,
}

impl std::fmt::Debug for LaplacianSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaplacianSolver")
            .field("num_nodes", &self.num_nodes)
            .field("method", &self.method)
            .finish()
    }
}

impl LaplacianSolver {
    /// Prepare a solver for the given connected graph.
    ///
    /// # Errors
    /// Returns [`LinalgError::InvalidInput`] for disconnected graphs, for
    /// empty graphs, or when [`SolverMethod::TreeDirect`] is requested on a
    /// non-tree.
    pub fn new(graph: &Graph, opts: SolverOptions) -> Result<Self, LinalgError> {
        let n = graph.num_nodes();
        if n == 0 {
            return Err(LinalgError::InvalidInput("empty graph".into()));
        }
        if !is_connected(graph) {
            return Err(LinalgError::InvalidInput(
                "laplacian solver requires a connected graph".into(),
            ));
        }
        let is_tree = graph.num_edges() == n - 1;
        let method = match opts.method {
            SolverMethod::Auto => {
                if is_tree {
                    SolverMethod::TreeDirect
                } else if graph.density() <= 1.4 {
                    SolverMethod::TreePcg
                } else {
                    SolverMethod::AmgPcg
                }
            }
            m => m,
        };
        let backend = match method {
            SolverMethod::TreeDirect => {
                if !is_tree {
                    return Err(LinalgError::InvalidInput(
                        "TreeDirect requested on a graph with cycles".into(),
                    ));
                }
                Backend::TreeDirect(TreeSolver::new(graph))
            }
            SolverMethod::TreePcg => Backend::Pcg {
                precond: Arc::new(TreePreconditioner::from_graph(graph)),
            },
            SolverMethod::AmgPcg => Backend::Pcg {
                precond: Arc::new(AmgHierarchy::build(graph, &opts.amg)),
            },
            SolverMethod::JacobiPcg => Backend::Pcg {
                precond: Arc::new(JacobiPreconditioner::from_diagonal(
                    &graph.weighted_degrees(),
                )),
            },
            SolverMethod::IcholPcg => Backend::Pcg {
                precond: Arc::new(crate::ichol::IncompleteCholesky::new(
                    &sgl_graph::laplacian::laplacian_csr(graph),
                    1e-8,
                )?),
            },
            SolverMethod::Auto => unreachable!("resolved above"),
        };
        Ok(LaplacianSolver {
            op: LaplacianOp::new(graph),
            backend,
            opts,
            method,
            num_nodes: n,
        })
    }

    /// The backend actually in use (after `Auto` resolution).
    pub fn method(&self) -> SolverMethod {
        self.method
    }

    /// The PCG preconditioner prepared for this graph, if the resolved
    /// method is a PCG variant (`None` for the exact tree solve). Shared
    /// out so a solver revision can keep preconditioning PCG on a
    /// slightly *updated* operator — the stale-preconditioner
    /// amortization: the setup (tree build, IC(0) factorization, AMG
    /// hierarchy) keeps earning across low-rank graph changes. PCG is
    /// invariant to preconditioner scaling, so a uniformly rescaled
    /// graph needs no adjustment at all.
    pub fn preconditioner(&self) -> Option<Arc<dyn Preconditioner + Send + Sync>> {
        match &self.backend {
            Backend::Pcg { precond } => Some(Arc::clone(precond)),
            Backend::TreeDirect(_) => None,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Solve `L x = b`, returning the mean-zero solution.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotConverged`] if PCG hits its iteration cap
    /// and a dimension error for a wrong-sized `b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        Ok(self.solve_with_stats(b)?.0)
    }

    /// Solve and report iteration statistics.
    ///
    /// # Errors
    /// See [`LaplacianSolver::solve`].
    pub fn solve_with_stats(&self, b: &[f64]) -> Result<(Vec<f64>, SolverStats), LinalgError> {
        let mut x = vec![0.0; self.num_nodes];
        let stats = self.solve_into(b, &mut x, &mut SolveScratch::new())?;
        Ok((x, stats))
    }

    /// Solve `L x = b` into a caller-provided buffer, drawing all scratch
    /// vectors from a reusable [`SolveScratch`]. This is the hot entry
    /// point of the batched solvers: one scratch per worker makes every
    /// solve after the first allocation-free.
    ///
    /// # Errors
    /// See [`LaplacianSolver::solve`].
    ///
    /// # Panics
    /// Panics if `x.len()` differs from the node count.
    pub fn solve_into(
        &self,
        b: &[f64],
        x: &mut [f64],
        scratch: &mut SolveScratch,
    ) -> Result<SolverStats, LinalgError> {
        if b.len() != self.num_nodes {
            return Err(LinalgError::DimensionMismatch {
                context: "laplacian solve rhs",
                expected: self.num_nodes,
                actual: b.len(),
            });
        }
        assert_eq!(x.len(), self.num_nodes, "solve_into: x length mismatch");
        match &self.backend {
            Backend::TreeDirect(ts) => {
                ts.solve_into(b, x);
                Ok(SolverStats {
                    iterations: 0,
                    relative_residual: 0.0,
                })
            }
            Backend::Pcg { precond } => {
                let cg_opts = CgOptions {
                    rtol: self.opts.rtol,
                    max_iter: self.opts.max_iter,
                    project_mean: true,
                    // The buffered P·A·P sandwich — same arithmetic as
                    // the old ProjectedOperator wrapper, but through the
                    // workspace instead of a per-iteration clone.
                    project_apply_input: true,
                    ..CgOptions::default()
                };
                let st =
                    pcg_solve_with(&self.op, &precond.as_ref(), b, &cg_opts, &mut scratch.cg, x)?;
                vecops::project_out_mean(x);
                Ok(SolverStats {
                    iterations: st.iterations,
                    relative_residual: st.relative_residual,
                })
            }
        }
    }

    /// Solve for many right-hand sides (columns of `b` as slices),
    /// sequentially through one shared scratch. (The parallel fan-out
    /// lives in `sgl-solver`'s batched backend handles.)
    ///
    /// # Errors
    /// See [`LaplacianSolver::solve`].
    pub fn solve_many(&self, rhs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, LinalgError> {
        let mut scratch = SolveScratch::new();
        rhs.iter()
            .map(|b| {
                let mut x = vec![0.0; self.num_nodes];
                self.solve_into(b, &mut x, &mut scratch)?;
                Ok(x)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_datasets::grid2d;
    use sgl_graph::laplacian::laplacian_csr;
    use sgl_linalg::Rng;

    fn verify(g: &Graph, solver: &LaplacianSolver, seed: u64) {
        let n = g.num_nodes();
        let mut rng = Rng::seed_from_u64(seed);
        let mut b = rng.normal_vec(n);
        vecops::project_out_mean(&mut b);
        let x = solver.solve(&b).unwrap();
        let l = laplacian_csr(g);
        let lx = l.matvec(&x);
        let mut r = vecops::sub(&b, &lx);
        vecops::project_out_mean(&mut r);
        assert!(
            vecops::norm2(&r) / vecops::norm2(&b) < 1e-8,
            "relative residual too large"
        );
        assert!(vecops::mean(&x).abs() < 1e-9, "solution must be mean-zero");
    }

    #[test]
    fn auto_on_tree_uses_direct() {
        let g = Graph::from_edges(20, (0..19).map(|i| (i, i + 1, 1.0 + i as f64 * 0.1)));
        let s = LaplacianSolver::new(&g, SolverOptions::default()).unwrap();
        assert_eq!(s.method(), SolverMethod::TreeDirect);
        verify(&g, &s, 1);
    }

    #[test]
    fn auto_on_mesh_uses_amg() {
        let g = grid2d(12, 12);
        let s = LaplacianSolver::new(&g, SolverOptions::default()).unwrap();
        assert_eq!(s.method(), SolverMethod::AmgPcg);
        verify(&g, &s, 2);
    }

    #[test]
    fn all_backends_agree() {
        let g = grid2d(8, 8);
        let mut rng = Rng::seed_from_u64(5);
        let mut b = rng.normal_vec(64);
        vecops::project_out_mean(&mut b);
        let mut solutions = Vec::new();
        for m in [
            SolverMethod::TreePcg,
            SolverMethod::AmgPcg,
            SolverMethod::JacobiPcg,
            SolverMethod::IcholPcg,
        ] {
            let s = LaplacianSolver::new(
                &g,
                SolverOptions {
                    method: m,
                    ..SolverOptions::default()
                },
            )
            .unwrap();
            solutions.push(s.solve(&b).unwrap());
        }
        for w in solutions.windows(2) {
            let d = vecops::sub(&w[0], &w[1]);
            assert!(vecops::norm2(&d) < 1e-6, "backends disagree");
        }
    }

    #[test]
    fn tree_direct_on_cyclic_graph_errors() {
        let g = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        let r = LaplacianSolver::new(
            &g,
            SolverOptions {
                method: SolverMethod::TreeDirect,
                ..SolverOptions::default()
            },
        );
        assert!(r.is_err());
    }

    #[test]
    fn disconnected_graph_errors() {
        let g = Graph::from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)]);
        assert!(LaplacianSolver::new(&g, SolverOptions::default()).is_err());
    }

    #[test]
    fn solve_many_matches_individual() {
        let g = grid2d(5, 5);
        let s = LaplacianSolver::new(&g, SolverOptions::default()).unwrap();
        let mut rng = Rng::seed_from_u64(9);
        let rhs: Vec<Vec<f64>> = (0..3)
            .map(|_| {
                let mut v = rng.normal_vec(25);
                vecops::project_out_mean(&mut v);
                v
            })
            .collect();
        let many = s.solve_many(&rhs).unwrap();
        for (b, x) in rhs.iter().zip(&many) {
            let single = s.solve(b).unwrap();
            let d = vecops::sub(x, &single);
            assert!(vecops::norm2(&d) < 1e-12);
        }
    }
}
