//! Property-based tests for the Laplacian solvers.

// Requires the external `proptest` crate: compiled only with
// `--features property-tests` in a networked environment.
#![cfg(feature = "property-tests")]

use proptest::prelude::*;
use sgl_graph::laplacian::laplacian_csr;
use sgl_graph::Graph;
use sgl_linalg::{vecops, Rng};
use sgl_solver::{
    AmgHierarchy, AmgOptions, LaplacianSolver, SolverMethod, SolverOptions, TreeSolver,
};

fn random_tree(n: usize, seed: u64) -> Graph {
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for v in 1..n {
        let u = rng.below(v);
        g.add_edge(u, v, 10f64.powf(rng.uniform_in(-2.0, 2.0)));
    }
    g
}

fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
    let mut g = random_tree(n, seed);
    let mut rng = Rng::seed_from_u64(seed ^ 0x77);
    let mut added = 0;
    let mut tries = 0;
    while added < extra && tries < 20 * extra + 20 {
        tries += 1;
        let u = rng.below(n);
        let v = rng.below(n);
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v, 10f64.powf(rng.uniform_in(-2.0, 2.0)));
            added += 1;
        }
    }
    g
}

fn mean_zero(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = rng.normal_vec(n);
    vecops::project_out_mean(&mut b);
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_solver_is_exact_on_random_trees(
        n in 2usize..40,
        seed in 0u64..10_000,
    ) {
        let tree = random_tree(n, seed);
        let b = mean_zero(n, seed ^ 1);
        let x = TreeSolver::new(&tree).solve(&b);
        let l = laplacian_csr(&tree);
        let lx = l.matvec(&x);
        for i in 0..n {
            prop_assert!(
                (lx[i] - b[i]).abs() < 1e-8 * vecops::norm2(&b).max(1.0),
                "residual at {i}"
            );
        }
        prop_assert!(vecops::mean(&x).abs() < 1e-9);
    }

    #[test]
    fn pcg_backends_solve_random_connected_graphs(
        n in 4usize..30,
        extra in 1usize..20,
        seed in 0u64..10_000,
    ) {
        let g = random_connected(n, extra, seed);
        let b = mean_zero(n, seed ^ 2);
        let l = laplacian_csr(&g);
        for method in [SolverMethod::TreePcg, SolverMethod::AmgPcg, SolverMethod::JacobiPcg] {
            let s = LaplacianSolver::new(
                &g,
                SolverOptions { method, ..SolverOptions::default() },
            )
            .unwrap();
            let x = s.solve(&b).unwrap();
            let lx = l.matvec(&x);
            let mut r = vecops::sub(&b, &lx);
            vecops::project_out_mean(&mut r);
            prop_assert!(
                vecops::norm2(&r) / vecops::norm2(&b).max(1e-300) < 1e-7,
                "{method:?} failed"
            );
        }
    }

    #[test]
    fn amg_vcycle_is_a_valid_pcg_preconditioner(
        n in 30usize..120,
        extra in 10usize..60,
        seed in 0u64..10_000,
    ) {
        // As a PCG preconditioner the V-cycle must act like an SPD
        // operator on the mean-zero subspace: symmetric bilinear form and
        // positive energy. (A standalone residual-contraction guarantee
        // is NOT claimed for unsmoothed aggregation on arbitrary weighted
        // graphs — PCG supplies the convergence.)
        let g = random_connected(n, extra, seed);
        let h = AmgHierarchy::build(&g, &AmgOptions::default());
        let a = mean_zero(n, seed ^ 3);
        let b = mean_zero(n, seed ^ 4);
        let ma = h.v_cycle(&a);
        let mb = h.v_cycle(&b);
        let scale = vecops::norm2(&a) * vecops::norm2(&mb)
            + vecops::norm2(&b) * vecops::norm2(&ma);
        prop_assert!(
            (vecops::dot(&a, &mb) - vecops::dot(&b, &ma)).abs() < 1e-9 * scale.max(1e-300),
            "V-cycle not symmetric"
        );
        prop_assert!(vecops::dot(&a, &ma) > 0.0, "V-cycle not positive");
        prop_assert!(vecops::dot(&b, &mb) > 0.0, "V-cycle not positive");
    }

    #[test]
    fn solutions_respect_superposition(
        n in 4usize..25,
        seed in 0u64..10_000,
    ) {
        // L⁺ is linear: solve(a + b) == solve(a) + solve(b).
        let g = random_connected(n, 5, seed);
        let s = LaplacianSolver::new(&g, SolverOptions::default()).unwrap();
        let b1 = mean_zero(n, seed ^ 4);
        let b2 = mean_zero(n, seed ^ 5);
        let sum: Vec<f64> = b1.iter().zip(&b2).map(|(a, b)| a + b).collect();
        let x1 = s.solve(&b1).unwrap();
        let x2 = s.solve(&b2).unwrap();
        let xs = s.solve(&sum).unwrap();
        for i in 0..n {
            prop_assert!((xs[i] - x1[i] - x2[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn parallel_solve_batch_matches_serial(
        n in 6usize..30,
        nrhs in 1usize..7,
        seed in 0u64..10_000,
        threads in 2usize..6,
    ) {
        // Per-RHS fan-out must agree with the serial path to (well
        // beyond) solver tolerance on any connected graph. The design
        // guarantees bit-identical results; assert a strict 1e-12.
        use sgl_solver::SolverPolicy;
        let g = random_connected(n, 4, seed);
        let rhs: Vec<Vec<f64>> = (0..nrhs).map(|i| mean_zero(n, seed ^ (100 + i as u64))).collect();
        let serial = SolverPolicy::default()
            .with_parallelism(1)
            .build_handle(&g)
            .unwrap()
            .solve_batch(&rhs)
            .unwrap();
        let par = SolverPolicy::default()
            .with_parallelism(threads)
            .build_handle(&g)
            .unwrap()
            .solve_batch(&rhs)
            .unwrap();
        for (a, b) in par.iter().zip(&serial) {
            let d = vecops::sub(a, b);
            prop_assert!(vecops::norm2(&d) <= 1e-12, "batch diverges: {}", vecops::norm2(&d));
        }
    }
}
