//! Spectral-affinity node aggregation.
//!
//! Two nodes belong in one aggregate when every *smooth* test vector
//! assigns them nearly the same value — the algebraic-distance affinity
//! of lean AMG, reused by SF-SGL/GRASPEL-style spectral coarsening. The
//! affinity between neighbors `u, v` with filtered signatures
//! `x_u, x_v` (rows of the test-vector matrix) is the squared cosine
//!
//! ```text
//! aff(u, v) = ⟨x_u, x_v⟩² / (‖x_u‖² ‖x_v‖²) ∈ [0, 1],
//! ```
//!
//! and aggregation is greedy heavy-affinity matching over the graph's
//! edges, repeated (with restricted test vectors) until the requested
//! coarsening ratio is met. Everything is ordered by node/edge index
//! with explicit tie-breaking, so the resulting [`Coarsening`] is
//! **bit-identical across thread counts and runs** — the determinism
//! contract the multilevel hierarchy inherits.

use sgl_core::SglError;
use sgl_graph::coarsen::{contract_partition, prolongation_matrix, validate_partition};
use sgl_graph::{AdjacencyCsr, Graph};
use sgl_linalg::{vecops, CsrMatrix, DenseMatrix};

/// A partition of fine nodes into coarse aggregates, with the
/// piecewise-constant prolongation it induces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coarsening {
    partition: Vec<usize>,
    num_coarse: usize,
}

impl Coarsening {
    /// Wrap a validated partition.
    ///
    /// # Panics
    /// Panics on an invalid partition (out-of-range label or empty
    /// aggregate) — see [`validate_partition`].
    pub fn new(partition: Vec<usize>, num_coarse: usize) -> Self {
        validate_partition(&partition, num_coarse);
        Coarsening {
            partition,
            num_coarse,
        }
    }

    /// Fine node → aggregate id map.
    pub fn partition(&self) -> &[usize] {
        &self.partition
    }

    /// Number of coarse aggregates.
    pub fn num_coarse(&self) -> usize {
        self.num_coarse
    }

    /// Number of fine nodes.
    pub fn num_fine(&self) -> usize {
        self.partition.len()
    }

    /// Achieved shrink factor `num_coarse / num_fine`.
    pub fn ratio(&self) -> f64 {
        self.num_coarse as f64 / self.partition.len() as f64
    }

    /// Nodes per aggregate.
    pub fn aggregate_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_coarse];
        for &a in &self.partition {
            sizes[a] += 1;
        }
        sizes
    }

    /// The piecewise-constant prolongation `P` (`num_fine × num_coarse`).
    pub fn prolongation(&self) -> CsrMatrix {
        prolongation_matrix(&self.partition, self.num_coarse)
    }

    /// Restrict node-major data by aggregate **means** (voltages: the
    /// coarse node's potential is its members' average).
    ///
    /// # Panics
    /// Panics if `x` has a row per fine node mismatch.
    pub fn restrict_mean(&self, x: &DenseMatrix) -> DenseMatrix {
        let mut out = self.restrict_sum(x);
        let sizes = self.aggregate_sizes();
        for (a, &size) in sizes.iter().enumerate() {
            let inv = 1.0 / size as f64;
            for v in out.row_mut(a) {
                *v *= inv;
            }
        }
        out
    }

    /// Restrict node-major data by aggregate **sums** (`Pᵀ x`; currents:
    /// the coarse node absorbs its members' injections).
    ///
    /// # Panics
    /// Panics if `x` has a row per fine node mismatch.
    pub fn restrict_sum(&self, x: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            x.nrows(),
            self.partition.len(),
            "restrict: row count mismatch"
        );
        let m = x.ncols();
        let mut out = DenseMatrix::zeros(self.num_coarse, m);
        for (u, &a) in self.partition.iter().enumerate() {
            let src = x.row(u);
            let dst = out.row_mut(a);
            for j in 0..m {
                dst[j] += src[j];
            }
        }
        out
    }

    /// Compose with a coarsening of *this* coarsening's coarse level:
    /// the result maps fine nodes straight to the coarser aggregates.
    ///
    /// # Panics
    /// Panics if `coarser` does not partition exactly this coarsening's
    /// aggregates.
    pub fn compose(&self, coarser: &Coarsening) -> Coarsening {
        assert_eq!(
            coarser.num_fine(),
            self.num_coarse,
            "compose: level mismatch"
        );
        let partition = self
            .partition
            .iter()
            .map(|&a| coarser.partition[a])
            .collect();
        Coarsening::new(partition, coarser.num_coarse)
    }

    /// Contract a graph defined on this coarsening's fine nodes (the
    /// graph-level Galerkin operator).
    ///
    /// # Panics
    /// Panics on node-count mismatch.
    pub fn contract(&self, g: &Graph) -> Graph {
        contract_partition(g, &self.partition, self.num_coarse)
    }
}

/// Options for [`spectral_affinity_aggregate`].
#[derive(Debug, Clone)]
pub struct AggregationOptions {
    /// Keep matching until the coarse count is at most
    /// `target_ratio · N` (or matching stalls).
    pub target_ratio: f64,
    /// Cap on internal matching passes per call.
    pub max_passes: usize,
}

impl Default for AggregationOptions {
    fn default() -> Self {
        AggregationOptions {
            target_ratio: 0.6,
            max_passes: 4,
        }
    }
}

/// Squared-cosine affinity of two signature rows.
#[inline]
fn affinity(a: &[f64], b: &[f64]) -> f64 {
    let num = vecops::dot(a, b);
    let den = vecops::norm2_sq(a) * vecops::norm2_sq(b);
    if den <= 0.0 {
        0.0
    } else {
        (num * num) / den
    }
}

/// One deterministic heavy-affinity matching pass: each unassigned node
/// (ascending index) pairs with its highest-affinity unassigned
/// neighbor (ties: smaller index); leftovers join their
/// highest-affinity assigned neighbor; isolated nodes keep their own
/// aggregate.
fn match_pass(graph: &Graph, vectors: &DenseMatrix) -> Coarsening {
    let n = graph.num_nodes();
    let adj = AdjacencyCsr::build(graph);
    let mut partition = vec![usize::MAX; n];
    let mut next_id = 0usize;
    for u in 0..n {
        if partition[u] != usize::MAX {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for (v, _, _) in adj.neighbors(u) {
            if partition[v] != usize::MAX {
                continue;
            }
            let a = affinity(vectors.row(u), vectors.row(v));
            let better = match best {
                None => true,
                Some((bv, ba)) => a > ba || (a == ba && v < bv),
            };
            if better {
                best = Some((v, a));
            }
        }
        if let Some((v, _)) = best {
            partition[u] = next_id;
            partition[v] = next_id;
            next_id += 1;
        }
    }
    // Leftovers: all neighbors already matched (or none). Join the
    // strongest-affinity neighbor's aggregate; isolated nodes become
    // singletons.
    for u in 0..n {
        if partition[u] != usize::MAX {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for (v, _, _) in adj.neighbors(u) {
            if partition[v] == usize::MAX {
                continue; // another leftover; resolved on its own turn
            }
            let a = affinity(vectors.row(u), vectors.row(v));
            let better = match best {
                None => true,
                Some((bv, ba)) => a > ba || (a == ba && v < bv),
            };
            if better {
                best = Some((v, a));
            }
        }
        match best {
            Some((v, _)) => partition[u] = partition[v],
            None => {
                partition[u] = next_id;
                next_id += 1;
            }
        }
    }
    Coarsening::new(partition, next_id)
}

/// Aggregate a connected graph by spectral affinity of the given test
/// vectors (`N × t`, row `u` = node `u`'s low-pass signature — see
/// [`sgl_linalg::filter`]). Matching passes repeat, with mean-restricted
/// signatures on the contracted graph, until the coarse count reaches
/// `opts.target_ratio · N`, a pass stops shrinking, or `opts.max_passes`
/// passes ran.
///
/// Deterministic: same graph + vectors ⇒ the same partition, at any
/// ambient thread count.
///
/// # Errors
/// Returns [`SglError::InvalidGraph`] for an empty graph and
/// [`SglError::InvalidConfig`] for a ratio outside `(0, 1)`.
///
/// # Panics
/// Panics if `vectors` does not have one row per node.
pub fn spectral_affinity_aggregate(
    graph: &Graph,
    vectors: &DenseMatrix,
    opts: &AggregationOptions,
) -> Result<Coarsening, SglError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Err(SglError::InvalidGraph("aggregation: empty graph".into()));
    }
    assert_eq!(
        vectors.nrows(),
        n,
        "aggregation: one signature row per node"
    );
    if !(opts.target_ratio > 0.0 && opts.target_ratio < 1.0) {
        return Err(SglError::InvalidConfig(format!(
            "aggregation target_ratio must lie in (0, 1), got {}",
            opts.target_ratio
        )));
    }
    let target = ((opts.target_ratio * n as f64).ceil() as usize).max(1);
    let mut coarsening = match_pass(graph, vectors);
    let mut pass = 1;
    while coarsening.num_coarse() > target && pass < opts.max_passes {
        let coarse_graph = coarsening.contract(graph);
        let coarse_vectors = coarsening.restrict_mean(vectors);
        let next = match_pass(&coarse_graph, &coarse_vectors);
        if next.num_coarse() == coarsening.num_coarse() {
            break; // stalled
        }
        coarsening = coarsening.compose(&next);
        pass += 1;
    }
    Ok(coarsening)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_graph::laplacian::LaplacianOp;
    use sgl_linalg::filter::{smoothed_test_vectors, FilterOptions};

    fn signatures(g: &Graph) -> DenseMatrix {
        let op = LaplacianOp::new(g);
        smoothed_test_vectors(&op, &g.weighted_degrees(), &FilterOptions::default())
    }

    #[test]
    fn matching_pairs_cover_all_nodes() {
        let g = sgl_datasets::grid2d(8, 8);
        let c = spectral_affinity_aggregate(&g, &signatures(&g), &AggregationOptions::default())
            .unwrap();
        assert_eq!(c.num_fine(), 64);
        assert!(c.num_coarse() < 64);
        assert!(
            c.num_coarse() >= 64 / 4,
            "over-aggressive: {}",
            c.num_coarse()
        );
        // Every aggregate is non-empty by construction (validated).
        assert_eq!(c.aggregate_sizes().iter().sum::<usize>(), 64);
    }

    #[test]
    fn aggregates_are_connected() {
        // Matching only ever merges along edges, so each aggregate's
        // induced subgraph must be connected.
        let g = sgl_datasets::grid2d(10, 6);
        let c = spectral_affinity_aggregate(&g, &signatures(&g), &AggregationOptions::default())
            .unwrap();
        for a in 0..c.num_coarse() {
            let members: Vec<usize> = (0..c.num_fine())
                .filter(|&u| c.partition()[u] == a)
                .collect();
            let intra: Vec<usize> = g
                .edges()
                .iter()
                .enumerate()
                .filter(|(_, e)| c.partition()[e.u] == a && c.partition()[e.v] == a)
                .map(|(i, _)| i)
                .collect();
            let sub = g.edge_subgraph(&intra);
            let comps = sgl_graph::traversal::connected_components(&sub);
            // The subgraph keeps all N nodes; members must share one
            // component.
            let label = comps.labels[members[0]];
            assert!(
                members.iter().all(|&u| comps.labels[u] == label),
                "aggregate {a} is disconnected"
            );
        }
    }

    #[test]
    fn deeper_target_ratio_coarsens_further() {
        let g = sgl_datasets::grid2d(12, 12);
        let v = signatures(&g);
        let mild = spectral_affinity_aggregate(
            &g,
            &v,
            &AggregationOptions {
                target_ratio: 0.6,
                max_passes: 4,
            },
        )
        .unwrap();
        let deep = spectral_affinity_aggregate(
            &g,
            &v,
            &AggregationOptions {
                target_ratio: 0.2,
                max_passes: 4,
            },
        )
        .unwrap();
        assert!(deep.num_coarse() < mild.num_coarse());
        assert!(
            deep.num_coarse() as f64 <= 0.35 * 144.0,
            "{}",
            deep.num_coarse()
        );
    }

    #[test]
    fn aggregation_is_deterministic() {
        let g = sgl_datasets::grid2d(9, 9);
        let v = signatures(&g);
        let a = spectral_affinity_aggregate(&g, &v, &AggregationOptions::default()).unwrap();
        let b = spectral_affinity_aggregate(&g, &v, &AggregationOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn restriction_mean_and_sum() {
        let c = Coarsening::new(vec![0, 0, 1], 2);
        let x = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let sum = c.restrict_sum(&x);
        assert_eq!(sum.row(0), &[4.0, 6.0]);
        assert_eq!(sum.row(1), &[5.0, 6.0]);
        let mean = c.restrict_mean(&x);
        assert_eq!(mean.row(0), &[2.0, 3.0]);
        assert_eq!(mean.row(1), &[5.0, 6.0]);
    }

    #[test]
    fn compose_flattens_two_levels() {
        let fine = Coarsening::new(vec![0, 0, 1, 1, 2, 2], 3);
        let coarse = Coarsening::new(vec![0, 0, 1], 2);
        let all = fine.compose(&coarse);
        assert_eq!(all.partition(), &[0, 0, 0, 0, 1, 1]);
        assert_eq!(all.num_coarse(), 2);
    }

    #[test]
    fn bad_inputs_are_errors() {
        let g = sgl_datasets::grid2d(3, 3);
        let v = signatures(&g);
        assert!(matches!(
            spectral_affinity_aggregate(
                &g,
                &v,
                &AggregationOptions {
                    target_ratio: 1.0,
                    max_passes: 2
                }
            ),
            Err(SglError::InvalidConfig(_))
        ));
        assert!(matches!(
            spectral_affinity_aggregate(
                &Graph::new(0),
                &DenseMatrix::zeros(0, 1),
                &AggregationOptions::default()
            ),
            Err(SglError::InvalidGraph(_))
        ));
    }
}
