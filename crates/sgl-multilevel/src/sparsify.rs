//! Effective-resistance edge sampling (GRASPEL-style spectral
//! sparsification) for learned/prolonged graphs.
//!
//! Each off-tree edge is scored by its *leverage* `w_e · R_eff(e)` — the
//! spectral-sparsification sampling weight of Spielman–Srivastava — and
//! the lowest-leverage edges are dropped until the graph meets a target
//! density. A maximum spanning tree is always kept, so connectivity
//! survives any target. The resistances come from a pluggable
//! [`ResistanceEstimator`](sgl_core::ResistanceEstimator), and a
//! spectral-similarity check compares the low eigenvalues before and
//! after pruning.

use sgl_core::{
    build_resistance_estimator, compare_spectra, ResistanceMethod, SglError, SpectrumComparison,
    SpectrumMethod,
};
use sgl_graph::mst::maximum_spanning_tree;
use sgl_graph::Graph;
use sgl_solver::{SolveStats, SolverContext, SolverPolicy};

/// Options for [`sparsify_by_resistance`].
#[derive(Debug, Clone)]
pub struct SparsifyOptions {
    /// Effective-resistance estimator (the JL sketch amortizes one
    /// batched solve over every edge; `SpectralSketch` keeps the whole
    /// pass solver-free).
    pub method: ResistanceMethod,
    /// Solver policy for estimators that need solves.
    pub policy: SolverPolicy,
    /// Seed for sketch-based estimators.
    pub seed: u64,
    /// Compare this many low nonzero eigenvalues before/after pruning
    /// (0 skips the check — e.g. inside a V-cycle where the caller
    /// verifies the final graph instead).
    pub check_eigs: usize,
    /// The check passes when the mean relative eigenvalue error stays
    /// below this bound.
    pub max_relative_error: f64,
}

impl Default for SparsifyOptions {
    fn default() -> Self {
        SparsifyOptions {
            method: ResistanceMethod::JlSketch { projections: 64 },
            policy: SolverPolicy::default(),
            seed: 0x5BA6,
            check_eigs: 6,
            max_relative_error: 0.1,
        }
    }
}

/// Outcome of [`sparsify_by_resistance`].
#[derive(Debug, Clone)]
pub struct Sparsified {
    /// The pruned graph (identical to the input when it already met the
    /// target density).
    pub graph: Graph,
    /// Edges kept.
    pub kept_edges: usize,
    /// Edges dropped.
    pub dropped_edges: usize,
    /// Low-spectrum comparison original vs. pruned (`None` when the
    /// check was skipped or nothing was dropped).
    pub spectral: Option<SpectrumComparison>,
    /// Whether the spectral check passed (vacuously `true` when
    /// skipped).
    pub within_tolerance: bool,
    /// Laplacian-solve statistics of the resistance estimation.
    pub solver_stats: SolveStats,
}

/// Prune `graph` down to at most `target_density · N` edges by
/// effective-resistance leverage scores, never dropping below a maximum
/// spanning tree. See the [module docs](self).
///
/// Deterministic: scores are computed by a seeded estimator and ties
/// break by edge index, so the kept edge set is identical across runs
/// and thread counts.
///
/// # Errors
/// Returns [`SglError::InvalidConfig`] for a non-positive target
/// density, [`SglError::InvalidGraph`] for a disconnected graph, and
/// propagates estimator/solver failures.
pub fn sparsify_by_resistance(
    graph: &Graph,
    target_density: f64,
    opts: &SparsifyOptions,
) -> Result<Sparsified, SglError> {
    if !(target_density > 0.0 && target_density.is_finite()) {
        return Err(SglError::InvalidConfig(format!(
            "sparsify: target density must be positive and finite, got {target_density}"
        )));
    }
    if !sgl_graph::traversal::is_connected(graph) {
        return Err(SglError::InvalidGraph(
            "sparsify: graph must be connected".into(),
        ));
    }
    let n = graph.num_nodes();
    let target_edges = ((target_density * n as f64).floor() as usize).max(n.saturating_sub(1));
    if graph.num_edges() <= target_edges {
        return Ok(Sparsified {
            graph: graph.clone(),
            kept_edges: graph.num_edges(),
            dropped_edges: 0,
            spectral: None,
            within_tolerance: true,
            solver_stats: SolveStats::default(),
        });
    }

    let mut ctx = SolverContext::new(opts.policy.clone());
    let estimator = build_resistance_estimator(graph, opts.method, &mut ctx, opts.seed)?;
    let tree = maximum_spanning_tree(graph);
    let off = tree.off_tree_edges();
    let pairs: Vec<(usize, usize)> = off
        .iter()
        .map(|&i| {
            let e = graph.edge(i);
            (e.u, e.v)
        })
        .collect();
    let resistances = estimator.resistances(&pairs)?;

    // Leverage score w_e · R_e, highest kept; ties break by edge index.
    let mut scored: Vec<(usize, f64)> = off
        .iter()
        .zip(&resistances)
        .map(|(&i, &r)| (i, graph.edge(i).weight * r.max(0.0)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let keep_off = target_edges.saturating_sub(tree.edge_indices.len());
    let mut keep = tree.edge_indices.clone();
    keep.extend(scored.iter().take(keep_off).map(|&(i, _)| i));
    keep.sort_unstable();
    let pruned = graph.edge_subgraph(&keep);

    let spectral = if opts.check_eigs > 0 {
        let k = opts.check_eigs.min(n.saturating_sub(2)).max(1);
        Some(compare_spectra(
            graph,
            &pruned,
            k,
            SpectrumMethod::ShiftInvert,
        )?)
    } else {
        None
    };
    let within_tolerance = spectral
        .as_ref()
        .is_none_or(|c| c.mean_relative_error <= opts.max_relative_error);
    Ok(Sparsified {
        kept_edges: pruned.num_edges(),
        dropped_edges: graph.num_edges() - pruned.num_edges(),
        graph: pruned,
        spectral,
        within_tolerance,
        solver_stats: ctx.cumulative_stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_graph::traversal::is_connected;

    #[test]
    fn prunes_to_target_and_stays_connected() {
        let g = sgl_datasets::grid2d(12, 12); // density ~1.83
        let s = sparsify_by_resistance(&g, 1.3, &SparsifyOptions::default()).unwrap();
        assert!(is_connected(&s.graph));
        assert!(s.graph.density() <= 1.3 + 1e-12);
        assert_eq!(s.kept_edges + s.dropped_edges, g.num_edges());
        assert!(s.dropped_edges > 0);
        assert!(s.solver_stats.solves > 0, "JL sketch must have solved");
        // Every kept edge existed in the original with its weight.
        for e in s.graph.edges() {
            let i = g.find_edge(e.u, e.v).unwrap();
            assert_eq!(g.edge(i).weight, e.weight);
        }
    }

    #[test]
    fn spectral_check_reports_low_error_on_mild_pruning() {
        let g = sgl_datasets::grid2d(10, 10);
        let opts = SparsifyOptions {
            max_relative_error: 0.35,
            ..SparsifyOptions::default()
        };
        let s = sparsify_by_resistance(&g, 1.5, &opts).unwrap();
        let cmp = s.spectral.expect("check requested");
        assert!(
            cmp.mean_relative_error < 0.35,
            "{}",
            cmp.mean_relative_error
        );
        assert!(s.within_tolerance);
        assert!(cmp.correlation > 0.9);
    }

    #[test]
    fn already_sparse_graph_is_untouched() {
        let g = sgl_datasets::grid2d(6, 6);
        let s = sparsify_by_resistance(&g, 3.0, &SparsifyOptions::default()).unwrap();
        assert_eq!(s.dropped_edges, 0);
        assert_eq!(s.graph.num_edges(), g.num_edges());
        assert!(s.spectral.is_none());
        assert!(s.within_tolerance);
    }

    #[test]
    fn tree_floor_is_respected() {
        // A target below 1 edge/node can never break the spanning tree.
        let g = sgl_datasets::grid2d(8, 8);
        let opts = SparsifyOptions {
            check_eigs: 0,
            ..SparsifyOptions::default()
        };
        let s = sparsify_by_resistance(&g, 0.1, &opts).unwrap();
        assert_eq!(s.graph.num_edges(), 63);
        assert!(is_connected(&s.graph));
        assert!(s.spectral.is_none(), "check was skipped");
    }

    #[test]
    fn deterministic_across_runs_and_estimators_reject_bad_input() {
        let g = sgl_datasets::grid2d(9, 9);
        let opts = SparsifyOptions {
            check_eigs: 0,
            ..SparsifyOptions::default()
        };
        let a = sparsify_by_resistance(&g, 1.2, &opts).unwrap();
        let b = sparsify_by_resistance(&g, 1.2, &opts).unwrap();
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        for (ea, eb) in a.graph.edges().iter().zip(b.graph.edges()) {
            assert_eq!((ea.u, ea.v, ea.weight), (eb.u, eb.v, eb.weight));
        }
        assert!(sparsify_by_resistance(&g, 0.0, &opts).is_err());
        let disconnected = Graph::from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)]);
        assert!(sparsify_by_resistance(&disconnected, 1.0, &opts).is_err());
    }
}
