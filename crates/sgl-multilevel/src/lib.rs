//! Multilevel spectral coarsening for SGL — learn big graphs on a small
//! hierarchy.
//!
//! The flat pipeline's per-iteration cost is dominated by eigensolves on
//! the full node set. SF-SGL (Zhang, Zhao & Feng, 2023) shows the same
//! spectral-densification loop runs on a *multilevel spectrally-coarsened
//! hierarchy* instead, and GRASPEL-style effective-resistance sampling
//! keeps the learned graphs sparse at scale. This crate is that layer:
//!
//! * [`coarsen`] — spectral-affinity node aggregation from low-pass
//!   filtered test vectors ([`sgl_linalg::filter`]), producing a
//!   [`Coarsening`] (partition + piecewise-constant prolongation) with
//!   deterministic tie-breaking — bit-identical at any thread count;
//! * [`hierarchy`] — a [`MultilevelHierarchy`] of Galerkin-contracted
//!   candidate graphs (`Pᵀ L P` ≡ graph contraction, see
//!   [`sgl_graph::coarsen`]), driven by `SglConfig::coarsening_ratio`
//!   and `SglConfig::max_levels`;
//! * [`learn`] — the V-cycle driver [`learn_multilevel`]: learn once on
//!   the coarsest level through the ordinary
//!   [`SglSession`](sgl_core::SglSession), prolong the learned topology
//!   upward with fine data-driven weights, and run bounded
//!   [`refine_weights_with`](sgl_core::refine_weights_with) sweeps per
//!   level;
//! * [`sparsify`] — [`sparsify_by_resistance`]: leverage-score edge
//!   sampling through a pluggable
//!   [`ResistanceEstimator`](sgl_core::ResistanceEstimator), pruning a
//!   graph to a target density without ever disconnecting it, with a
//!   spectral-similarity check.
//!
//! # Example
//!
//! ```
//! use sgl_core::{Measurements, SglConfig};
//! use sgl_multilevel::{learn_multilevel, MultilevelOptions};
//!
//! let truth = sgl_datasets::grid2d(16, 16);
//! let meas = Measurements::generate(&truth, 25, 7)?;
//! let cfg = SglConfig::builder()
//!     .tol(1e-6)
//!     .coarsening_ratio(0.6) // shrink to ≤ 60% of the nodes per level
//!     .max_levels(4)
//!     .build()?;
//! let mut opts = MultilevelOptions::default();
//! opts.hierarchy.coarsest_size = 64; // learn on ≤ 64 nodes
//! let result = learn_multilevel(&cfg, &meas, &opts)?;
//! assert_eq!(result.graph.num_nodes(), 256);
//! assert!(result.num_levels() >= 2);
//! # Ok::<(), sgl_core::SglError>(())
//! ```

pub mod coarsen;
pub mod hierarchy;
pub mod learn;
pub mod sparsify;

pub use coarsen::{spectral_affinity_aggregate, AggregationOptions, Coarsening};
pub use hierarchy::{HierarchyLevel, HierarchyOptions, MultilevelHierarchy};
pub use learn::{
    learn_multilevel, learn_multilevel_from_candidate, LevelReport, MultilevelOptions,
    MultilevelResult,
};
pub use sparsify::{sparsify_by_resistance, Sparsified, SparsifyOptions};
