//! The multilevel hierarchy: candidate graphs at every level, linked by
//! spectral-affinity coarsenings.
//!
//! Level 0 is the fine candidate graph (the kNN graph the flat pipeline
//! would densify); each subsequent level is the Galerkin contraction of
//! the previous one along a [`Coarsening`] computed from low-pass
//! filtered test vectors ([`sgl_linalg::filter`]). Construction stops at
//! `coarsest_size` nodes, at `max_levels` levels, or when aggregation
//! stalls. Given the same graph and options the hierarchy is
//! bit-identical across runs and thread counts.

use crate::coarsen::{spectral_affinity_aggregate, AggregationOptions, Coarsening};
use sgl_core::SglError;
use sgl_graph::laplacian::LaplacianOp;
use sgl_graph::Graph;
use sgl_linalg::filter::{smoothed_test_vectors, FilterOptions};

/// Knobs of [`MultilevelHierarchy::build`] beyond the `SglConfig`-owned
/// `coarsening_ratio` / `max_levels` pair.
#[derive(Debug, Clone)]
pub struct HierarchyOptions {
    /// Stop coarsening once a level has at most this many nodes (the
    /// coarsest level is where the full SGL learner runs, so it should
    /// stay comfortably dense-eig/LOBPCG sized).
    pub coarsest_size: usize,
    /// Low-pass filter for the per-level test vectors (the seed is
    /// perturbed per level so levels draw independent vectors).
    pub filter: FilterOptions,
    /// Matching passes per level (see [`AggregationOptions`]).
    pub max_match_passes: usize,
}

impl Default for HierarchyOptions {
    fn default() -> Self {
        HierarchyOptions {
            coarsest_size: 256,
            filter: FilterOptions::default(),
            max_match_passes: 4,
        }
    }
}

/// One level of the hierarchy.
#[derive(Debug, Clone)]
pub struct HierarchyLevel {
    /// The candidate graph at this level (level 0 = the fine graph).
    pub graph: Graph,
    /// Map to the next (coarser) level; `None` at the coarsest level.
    pub coarsening: Option<Coarsening>,
}

/// A built multilevel hierarchy, finest level first.
#[derive(Debug, Clone)]
pub struct MultilevelHierarchy {
    levels: Vec<HierarchyLevel>,
}

impl MultilevelHierarchy {
    /// Coarsen `fine` until `coarsest_size`, `max_levels`, or a stall —
    /// each level by spectral-affinity aggregation at
    /// `coarsening_ratio` (both typically drawn from
    /// `SglConfig::{coarsening_ratio, max_levels}`).
    ///
    /// # Errors
    /// Returns [`SglError::InvalidGraph`] for an empty or disconnected
    /// fine graph and [`SglError::InvalidConfig`] for a ratio outside
    /// `(0, 1)` or `max_levels == 0`.
    pub fn build(
        fine: &Graph,
        coarsening_ratio: f64,
        max_levels: usize,
        opts: &HierarchyOptions,
    ) -> Result<Self, SglError> {
        if fine.num_nodes() == 0 {
            return Err(SglError::InvalidGraph("hierarchy: empty graph".into()));
        }
        if !sgl_graph::traversal::is_connected(fine) {
            return Err(SglError::InvalidGraph(
                "hierarchy: fine graph must be connected".into(),
            ));
        }
        if max_levels == 0 {
            return Err(SglError::InvalidConfig(
                "hierarchy: max_levels must be at least 1".into(),
            ));
        }
        let agg_opts = AggregationOptions {
            target_ratio: coarsening_ratio,
            max_passes: opts.max_match_passes,
        };
        // Validate the ratio once up front (aggregation would also catch
        // it, but only when a level actually coarsens).
        if !(coarsening_ratio > 0.0 && coarsening_ratio < 1.0) {
            return Err(SglError::InvalidConfig(format!(
                "hierarchy: coarsening_ratio must lie in (0, 1), got {coarsening_ratio}"
            )));
        }
        let mut levels: Vec<HierarchyLevel> = Vec::new();
        let mut current = fine.clone();
        while levels.len() + 1 < max_levels {
            let n = current.num_nodes();
            if n <= opts.coarsest_size {
                break;
            }
            let op = LaplacianOp::new(&current);
            let vectors = smoothed_test_vectors(
                &op,
                &current.weighted_degrees(),
                &FilterOptions {
                    seed: opts.filter.seed.wrapping_add(levels.len() as u64),
                    ..opts.filter.clone()
                },
            );
            let coarsening = spectral_affinity_aggregate(&current, &vectors, &agg_opts)?;
            // Stall guard: a level that barely shrinks (or would drop
            // below a learnable size) ends the hierarchy.
            if coarsening.num_coarse() >= n || coarsening.num_coarse() < 4 {
                break;
            }
            let coarse = coarsening.contract(&current);
            levels.push(HierarchyLevel {
                graph: current,
                coarsening: Some(coarsening),
            });
            current = coarse;
        }
        levels.push(HierarchyLevel {
            graph: current,
            coarsening: None,
        });
        Ok(MultilevelHierarchy { levels })
    }

    /// Number of levels (1 = no coarsening happened).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Node counts per level, finest first.
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.graph.num_nodes()).collect()
    }

    /// Borrow a level (0 = finest).
    ///
    /// # Panics
    /// Panics on an out-of-range index.
    pub fn level(&self, l: usize) -> &HierarchyLevel {
        &self.levels[l]
    }

    /// The coarsest level.
    pub fn coarsest(&self) -> &HierarchyLevel {
        self.levels
            .last()
            .expect("hierarchy has at least one level")
    }

    /// All levels, finest first.
    pub fn levels(&self) -> &[HierarchyLevel] {
        &self.levels
    }

    /// The composed fine-to-coarsest coarsening (`None` when the
    /// hierarchy has a single level).
    pub fn composed_coarsening(&self) -> Option<Coarsening> {
        let mut iter = self.levels.iter().filter_map(|l| l.coarsening.as_ref());
        let first = iter.next()?.clone();
        Some(iter.fold(first, |acc, c| acc.compose(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_shrinking_levels() {
        let g = sgl_datasets::grid2d(40, 40);
        let opts = HierarchyOptions {
            coarsest_size: 100,
            ..HierarchyOptions::default()
        };
        let h = MultilevelHierarchy::build(&g, 0.6, 10, &opts).unwrap();
        assert!(h.num_levels() >= 3, "sizes {:?}", h.level_sizes());
        let sizes = h.level_sizes();
        assert_eq!(sizes[0], 1600);
        for w in sizes.windows(2) {
            assert!(w[1] < w[0], "levels must shrink: {sizes:?}");
            assert!(
                (w[1] as f64) <= 0.75 * w[0] as f64,
                "shrink too weak: {sizes:?}"
            );
        }
        // Every level stays connected.
        for l in h.levels() {
            assert!(sgl_graph::traversal::is_connected(&l.graph));
        }
        // The composed coarsening maps straight to the coarsest level.
        let all = h.composed_coarsening().unwrap();
        assert_eq!(all.num_fine(), 1600);
        assert_eq!(all.num_coarse(), *sizes.last().unwrap());
    }

    #[test]
    fn respects_level_cap_and_coarsest_size() {
        let g = sgl_datasets::grid2d(30, 30);
        let opts = HierarchyOptions {
            coarsest_size: 50,
            ..HierarchyOptions::default()
        };
        let capped = MultilevelHierarchy::build(&g, 0.6, 2, &opts).unwrap();
        assert_eq!(capped.num_levels(), 2);
        let flat = MultilevelHierarchy::build(&g, 0.6, 1, &opts).unwrap();
        assert_eq!(flat.num_levels(), 1);
        assert!(flat.composed_coarsening().is_none());
        // A graph already below coarsest_size never coarsens.
        let tiny = MultilevelHierarchy::build(
            &sgl_datasets::grid2d(5, 5),
            0.6,
            10,
            &HierarchyOptions::default(),
        )
        .unwrap();
        assert_eq!(tiny.num_levels(), 1);
    }

    #[test]
    fn hierarchy_is_deterministic() {
        let g = sgl_datasets::grid2d(20, 20);
        let opts = HierarchyOptions {
            coarsest_size: 60,
            ..HierarchyOptions::default()
        };
        let a = MultilevelHierarchy::build(&g, 0.55, 6, &opts).unwrap();
        let b = MultilevelHierarchy::build(&g, 0.55, 6, &opts).unwrap();
        assert_eq!(a.level_sizes(), b.level_sizes());
        for (la, lb) in a.levels().iter().zip(b.levels()) {
            assert_eq!(
                la.coarsening.as_ref().map(|c| c.partition().to_vec()),
                lb.coarsening.as_ref().map(|c| c.partition().to_vec())
            );
            for (ea, eb) in la.graph.edges().iter().zip(lb.graph.edges()) {
                assert_eq!((ea.u, ea.v), (eb.u, eb.v));
                assert_eq!(ea.weight, eb.weight);
            }
        }
    }

    #[test]
    fn bad_inputs_are_errors() {
        let g = sgl_datasets::grid2d(6, 6);
        let opts = HierarchyOptions::default();
        assert!(MultilevelHierarchy::build(&g, 0.0, 4, &opts).is_err());
        assert!(MultilevelHierarchy::build(&g, 1.0, 4, &opts).is_err());
        assert!(MultilevelHierarchy::build(&g, 0.5, 0, &opts).is_err());
        let disconnected = Graph::from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)]);
        assert!(MultilevelHierarchy::build(&disconnected, 0.5, 4, &opts).is_err());
    }
}
