//! The multilevel learning driver: coarsen, learn at the coarsest
//! level, prolong, refine — one V-shaped sweep.
//!
//! ```text
//! level 0 (N nodes)      kNN candidate graph ──┐        ┌─▶ refined graph
//! level 1 (≈ρN)                 contraction ──┐│        │┌─ prolong + refine
//!   ⋮                                          ⋮│        │⋮
//! level L (coarsest)             SglSession learns ─────┘
//! ```
//!
//! The full learning loop runs **once**, on the coarsest candidate
//! graph, through the ordinary [`SglSession`] over *restricted*
//! measurements (aggregate means of `X`, aggregate sums of `Y`) — with
//! the exact dense backends when the coarsest level fits them, so the
//! expensive part of the pipeline runs at a size where it is trivial.
//! The learned topology then climbs back up one level at a time:
//!
//! 1. **prolong** — the level's own candidate MST (Step 1b, one Kruskal
//!    pass, no solves) plus, for every coarse *off-tree* pick, the
//!    strongest fine candidate edge crossing its aggregate pair, at the
//!    fine edge's own eq.-(15) data weight `M/z^data`;
//! 2. **densify** — a bounded number of flat-loop Steps 2–3 sweeps
//!    (embed → score → add), warm-started from the prolonged coarse
//!    embedding (nested iteration) and run at a scoring-grade
//!    eigensolver tolerance;
//! 3. **refine** — bounded [`refine_weights_with`](sgl_core::refine_weights_with) sweeps toward the
//!    `η = 1` stationarity point;
//! 4. optionally **prune** back to a target density by
//!    resistance-leverage sampling.
//!
//! The finest level gets the usual Step-5 spectral edge scaling. All
//! Laplacian solves above the coarsest level flow through one
//! [`SolverContext`] (auxiliary quantities at [`MultilevelOptions::aux_rtol`]),
//! so [`MultilevelResult::solver_stats`] reports the whole V-cycle's PCG
//! effort — the number the multilevel bench compares against flat
//! learning.

use crate::coarsen::Coarsening;
use crate::hierarchy::{HierarchyOptions, MultilevelHierarchy};
use crate::sparsify::{sparsify_by_resistance, SparsifyOptions};
use sgl_core::embedding::EmbeddingOptions;
use sgl_core::{
    resolve_strategy, CandidatePool, EmbeddingBackend, LearnResult, LearnStrategy, Measurements,
    RefineOptions, SglConfig, SglError, SglSession,
};
use sgl_graph::mst::maximum_spanning_tree;
use sgl_graph::{EdgeDelta, Graph};
use sgl_knn::build_knn_graph;
use sgl_linalg::par::with_threads_hint;
use sgl_linalg::DenseMatrix;
use sgl_solver::{SolveStats, SolverContext};
use std::collections::HashMap;

/// Knobs of [`learn_multilevel`] beyond the shared [`SglConfig`]
/// (which contributes `coarsening_ratio`, `max_levels`, the solver
/// policy, and the coarsest-level learning parameters).
#[derive(Debug, Clone)]
pub struct MultilevelOptions {
    /// Hierarchy construction (coarsest size, test-vector filter).
    pub hierarchy: HierarchyOptions,
    /// Bounded densification sweeps per level after prolongation: each
    /// sweep embeds the current graph (warm-started from the prolonged
    /// coarse embedding — the nested-iteration trick that keeps fine
    /// eigensolves to a few steps), scores the remaining candidates, and
    /// adds the top `⌈N_ℓ β⌉` above tolerance — the flat loop's Step 2–3,
    /// capped. `0` keeps the coarse topology untouched.
    pub densify_iters: usize,
    /// Budget multiplier on `β` during the bounded sweeps: each sweep
    /// may add up to `⌈N_ℓ β · densify_boost⌉` edges. The flat loop
    /// re-embeds after every `⌈Nβ⌉` additions; with the sweep count
    /// capped, the same edge volume has to land in fewer, larger
    /// batches.
    pub densify_boost: f64,
    /// Eigensolver residual tolerance for the bounded sweeps' embeds
    /// (`None` inherits `SglConfig::eig_tol`). Candidate *scoring*
    /// tolerates much cruder spectra than the flat loop's convergence
    /// test — the SF-SGL observation — and a looser tolerance keeps
    /// LOBPCG well clear of its stall/fallback path on big fine levels.
    pub densify_eig_tol: Option<f64>,
    /// Relative residual tolerance for the V-cycle's *auxiliary* solves
    /// — JL refinement sketches and the Step-5 scaling ratio — which
    /// need a few digits, not the policy's full 1e-10 (`None` inherits
    /// `SolverPolicy::rtol`). The JL sketch itself carries percent-level
    /// sampling error, so solving its projections tighter buys nothing;
    /// the learned topology is unaffected, and the global Step-5 scale
    /// factor is computed to roughly this relative accuracy (so against
    /// a flat run the weights agree to ~`aux_rtol`, not bit-for-bit,
    /// when `scale_edges` is on).
    pub aux_rtol: Option<f64>,
    /// Per-level weight refinement after densification. `rounds = 0`
    /// disables refinement entirely.
    pub refine: RefineOptions,
    /// Prune a prolonged level back to this density (edges/node) when
    /// it exceeds it; `None` never prunes. The in-cycle check is
    /// eigenvalue-free (`check_eigs = 0` is forced) — verify the final
    /// graph instead.
    pub target_density: Option<f64>,
    /// Estimator settings for the in-cycle pruning.
    pub sparsify: SparsifyOptions,
}

impl Default for MultilevelOptions {
    fn default() -> Self {
        MultilevelOptions {
            hierarchy: HierarchyOptions::default(),
            densify_iters: 8,
            densify_boost: 4.0,
            densify_eig_tol: Some(1e-5),
            aux_rtol: Some(1e-4),
            refine: RefineOptions {
                rounds: 1,
                projections: 16,
                ..RefineOptions::default()
            },
            target_density: None,
            sparsify: SparsifyOptions::default(),
        }
    }
}

/// Per-level summary of the upward sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelReport {
    /// Level index (0 = finest).
    pub level: usize,
    /// Nodes at this level.
    pub nodes: usize,
    /// Edges after densification, refinement, and any pruning.
    pub edges: usize,
    /// Edges added by the bounded densification sweeps.
    pub edges_densified: usize,
    /// Refinement rounds run at this level.
    pub refine_rounds: usize,
    /// Edges removed by in-cycle pruning (0 when pruning is off).
    pub edges_pruned: usize,
}

/// The outcome of [`learn_multilevel`].
#[derive(Debug, Clone)]
pub struct MultilevelResult {
    /// The learned fine-level graph.
    pub graph: Graph,
    /// Node counts per hierarchy level, finest first.
    pub level_sizes: Vec<usize>,
    /// The coarsest-level learning result (trace, embedding, …).
    pub coarse: LearnResult,
    /// Upward-sweep reports, coarsest first.
    pub reports: Vec<LevelReport>,
    /// Step-5 scale factor applied at the finest level (`None` when
    /// skipped — voltage-only data or `scale_edges = false`).
    pub scale_factor: Option<f64>,
    /// Lifetime Laplacian-solve statistics of the whole run: the
    /// coarsest session's plus every prolong/refine/scale solve above
    /// it.
    pub solver_stats: SolveStats,
    /// Revision counters of the whole run (coarsest session + upward
    /// sweep): full factorizations vs. incrementally absorbed deltas.
    pub revision_stats: sgl_solver::RevisionStats,
}

impl MultilevelResult {
    /// Number of hierarchy levels.
    pub fn num_levels(&self) -> usize {
        self.level_sizes.len()
    }

    /// Density `|E|/|V|` of the learned fine graph.
    pub fn density(&self) -> f64 {
        self.graph.density()
    }
}

/// Learn a graph from measurements through the multilevel hierarchy:
/// build the kNN candidate graph (Step 1), coarsen it to
/// `config.max_levels` levels at `config.coarsening_ratio`, learn on the
/// coarsest level with a normal [`SglSession`], and prolong + refine
/// back to the fine level. See the [module docs](self).
///
/// Deterministic: same config, options, and measurements produce a
/// bit-identical graph at any `config.parallelism` / thread count.
///
/// # Errors
/// Propagates configuration, hierarchy, session, and solver failures.
pub fn learn_multilevel(
    config: &SglConfig,
    measurements: &Measurements,
    opts: &MultilevelOptions,
) -> Result<MultilevelResult, SglError> {
    config.validate()?;
    let candidate = with_threads_hint(config.parallelism, || {
        build_knn_graph(measurements.voltages(), &config.knn_graph_config())
    });
    learn_multilevel_from_candidate(config, measurements, candidate, opts)
}

/// [`learn_multilevel`] over a caller-provided fine candidate graph
/// (must span all measurement nodes and be connected) — the analogue of
/// [`SglSession::with_candidate_graph`].
///
/// # Errors
/// See [`learn_multilevel`].
pub fn learn_multilevel_from_candidate(
    config: &SglConfig,
    measurements: &Measurements,
    candidate: Graph,
    opts: &MultilevelOptions,
) -> Result<MultilevelResult, SglError> {
    config.validate()?;
    if measurements.num_nodes() < 4 {
        return Err(SglError::InvalidMeasurements(
            "need at least 4 nodes to learn a graph".into(),
        ));
    }
    if candidate.num_nodes() != measurements.num_nodes() {
        return Err(SglError::InvalidGraph(format!(
            "candidate graph has {} nodes, measurements have {}",
            candidate.num_nodes(),
            measurements.num_nodes()
        )));
    }
    with_threads_hint(config.parallelism, || {
        learn_inner(config, measurements, candidate, opts)
    })
}

fn learn_inner(
    config: &SglConfig,
    measurements: &Measurements,
    candidate: Graph,
    opts: &MultilevelOptions,
) -> Result<MultilevelResult, SglError> {
    // One strategy drives the whole V-cycle: the coarse session resolves
    // it itself from the config, and the upward sweep's embeds, weight
    // refinement, and finest-level Step 5 all route through it — so a
    // solver-free config keeps the entire multilevel run at
    // `solves == 0` / `handles_built == 0`.
    let strategy = resolve_strategy(config)?;
    let hierarchy = {
        let _sp = sgl_trace::span!("coarsen", count = candidate.num_nodes());
        MultilevelHierarchy::build(
            &candidate,
            config.coarsening_ratio,
            config.max_levels,
            &opts.hierarchy,
        )?
    };
    let coarsest = hierarchy.num_levels() - 1;

    // Restrict the measurements level by level: voltages by aggregate
    // mean, currents by aggregate sum (Pᵀ y — injections add up).
    let mut level_meas: Vec<Measurements> = vec![measurements.clone()];
    for l in 0..coarsest {
        let c = hierarchy.level(l).coarsening.as_ref().expect("inner level");
        let prev = &level_meas[l];
        let x = c.restrict_mean(prev.voltages());
        let next = match prev.currents() {
            Some(y) => Measurements::new(x, c.restrict_sum(y))?,
            None => Measurements::from_voltages(x)?,
        };
        level_meas.push(next);
    }

    // Learn once, on the coarsest candidate graph. Edge scaling is
    // deferred to the finest level (coarse weights only decide the
    // topology), which also keeps the coarse session cheaper. At the
    // sizes the hierarchy bottoms out at, the exact dense backends are
    // the right algorithms — machine-precision eigenpairs, a direct
    // factorization instead of iterations, and no LOBPCG stall path —
    // so an `Auto` policy gets upgraded to them when the coarsest level
    // fits the dense guard.
    let coarse_nodes = hierarchy.coarsest().graph.num_nodes();
    let mut coarse_cfg = config.clone().with_scale_edges(false);
    let use_dense = config.solver.method == sgl_solver::PolicyMethod::Auto
        && config.solver.dense_max_nodes != 0
        && coarse_nodes <= config.solver.dense_max_nodes;
    if use_dense {
        coarse_cfg.solver.method = sgl_solver::PolicyMethod::DenseCholesky;
    }
    let mut session = SglSession::with_candidate_graph(
        coarse_cfg,
        &level_meas[coarsest],
        hierarchy.coarsest().graph.clone(),
    )?;
    if use_dense {
        session =
            session.with_embedding_backend(Box::new(sgl_core::DenseEigBackend::with_limit(0)));
    }
    let coarse_result = {
        let _sp = sgl_trace::span!("level", count = coarsest);
        session.run()?
    };

    // Upward sweep: prolong, densify, refine, optionally prune — all
    // through one solver context so the stats add up. Auxiliary solves
    // (refinement sketches, the scaling ratio) run at `aux_rtol`.
    let mut aux_policy = config.solver.clone();
    if let Some(rtol) = opts.aux_rtol {
        aux_policy.rtol = rtol.max(config.solver.rtol);
    }
    let mut ctx = SolverContext::new(aux_policy);
    let mut current = coarse_result.graph.clone();
    let mut reports = vec![LevelReport {
        level: coarsest,
        nodes: current.num_nodes(),
        edges: current.num_edges(),
        edges_densified: 0,
        refine_rounds: 0,
        edges_pruned: 0,
    }];
    // The coarse embedding rides up the hierarchy as the eigensolver
    // warm start (nested iteration): at each level its rows are copied
    // onto the aggregate's members before the first fine embed.
    let mut warm_coords = Some(coarse_result.embedding.coords.clone());
    let mut prune_stats = SolveStats::default();
    for l in (0..coarsest).rev() {
        let _level_sp = sgl_trace::span!("level", count = l);
        let level = hierarchy.level(l);
        let coarsening = level.coarsening.as_ref().expect("inner level");
        let mut fine = prolong(&level.graph, coarsening, &current)?;
        warm_coords = warm_coords
            .map(|coords| prolong_coords(&coords, coarsening))
            .filter(|c| c.nrows() == fine.num_nodes());
        let mut densified = 0;
        if opts.densify_iters > 0 {
            let (added, next_warm) = densify_level(
                &mut fine,
                &level.graph,
                &level_meas[l],
                config,
                opts,
                warm_coords.take(),
                strategy.as_ref(),
                &mut ctx,
            )?;
            densified = added;
            warm_coords = next_warm;
        }
        if opts.refine.rounds > 0 {
            strategy.refine_weights(&mut fine, &level_meas[l], &opts.refine, &mut ctx)?;
        }
        let mut pruned = 0;
        if let Some(target) = opts.target_density {
            if fine.density() > target {
                let s = sparsify_by_resistance(
                    &fine,
                    target,
                    &SparsifyOptions {
                        check_eigs: 0,
                        ..opts.sparsify.clone()
                    },
                )?;
                pruned = s.dropped_edges;
                prune_stats.absorb(&s.solver_stats);
                fine = s.graph;
                ctx.invalidate();
            }
        }
        reports.push(LevelReport {
            level: l,
            nodes: fine.num_nodes(),
            edges: fine.num_edges(),
            edges_densified: densified,
            refine_rounds: opts.refine.rounds,
            edges_pruned: pruned,
        });
        current = fine;
    }

    // Step 5 at the finest level, exactly like the flat pipeline: the
    // strategy's scaler (solver-backed or matvec-only) applies the
    // global factor and keeps the context consistent.
    let scale_factor = if config.scale_edges {
        strategy
            .edge_scaler(config)
            .scale(&mut current, measurements, &mut ctx)?
    } else {
        None
    };

    let mut solver_stats = coarse_result.solver_stats;
    solver_stats.absorb(&ctx.cumulative_stats());
    solver_stats.absorb(&prune_stats);
    let mut revision_stats = coarse_result.revision_stats;
    revision_stats.absorb(&ctx.revision_stats());
    Ok(MultilevelResult {
        graph: current,
        level_sizes: hierarchy.level_sizes(),
        coarse: coarse_result,
        reports,
        scale_factor,
        solver_stats,
        revision_stats,
    })
}

/// Piecewise-constant prolongation of embedding coordinates: every fine
/// node inherits its aggregate's row. Column scaling is irrelevant to
/// the eigensolver (LOBPCG orthonormalizes its start block), so this is
/// the textbook nested-iteration warm start.
fn prolong_coords(coarse: &DenseMatrix, coarsening: &Coarsening) -> DenseMatrix {
    let part = coarsening.partition();
    let mut fine = DenseMatrix::zeros(part.len(), coarse.ncols());
    for (u, &a) in part.iter().enumerate() {
        fine.row_mut(u).copy_from_slice(coarse.row(a));
    }
    fine
}

/// Bounded densification at one level: up to `max_iters` sweeps of the
/// flat loop's Steps 2–3 (embed → score → add top `⌈N β⌉` above
/// tolerance) over the candidates not yet in `graph`, with the
/// eigensolver warm-started from `warm_coords` (and then from each
/// sweep's own block). Embeds run through the strategy's Step-2 backend.
/// Returns the number of edges added and the last embedding block for
/// the next level's warm start.
#[allow(clippy::too_many_arguments)]
fn densify_level(
    graph: &mut Graph,
    candidate: &Graph,
    measurements: &Measurements,
    config: &SglConfig,
    opts: &MultilevelOptions,
    warm_coords: Option<DenseMatrix>,
    strategy: &dyn LearnStrategy,
    ctx: &mut SolverContext,
) -> Result<(usize, Option<DenseMatrix>), SglError> {
    let n = graph.num_nodes();
    let width = (config.r - 1).min(n.saturating_sub(2)).max(1);
    let emb_opts = EmbeddingOptions {
        tol: opts.densify_eig_tol.unwrap_or(config.eig_tol),
        max_iter: config.eig_max_iter,
        seed: config.seed,
    };
    let backend: Box<dyn EmbeddingBackend> = strategy.embedding_backend(config);
    let per_iter = ((n as f64 * config.beta * opts.densify_boost.max(1.0)).ceil() as usize).max(1);
    let mut pool = CandidatePool::from_graph_excluding(candidate, graph, measurements);
    let mut warm = warm_coords.filter(|c| c.ncols() == width);
    let mut added = 0usize;
    for _ in 0..opts.densify_iters {
        if pool.is_empty() {
            break;
        }
        let embedding =
            backend.embed(graph, width, config.shift(), &emb_opts, warm.as_ref(), ctx)?;
        let sens = pool.sensitivities(&embedding);
        let smax = sens.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        warm = Some(embedding.coords);
        if smax < config.tol {
            break;
        }
        let picked = pool.select_top(&sens, per_iter, config.tol);
        if picked.is_empty() {
            break;
        }
        let mut deltas = Vec::with_capacity(picked.len());
        for c in &picked {
            graph.add_edge(c.u, c.v, c.weight);
            deltas.push(EdgeDelta::insert(c.u, c.v, c.weight));
        }
        added += picked.len();
        // Low-rank revision: the context keeps its factorization and
        // absorbs the sweep's insertions as a Woodbury correction (or
        // refreshes itself at the policy cadence).
        ctx.apply_deltas(graph, &deltas)?;
    }
    Ok((added, warm))
}

/// Expand a learned coarse graph one level down.
///
/// The base of the fine graph is the fine candidate's own maximum
/// spanning tree — exactly the flat learner's Step 1b, and a spanning
/// tree costs one Kruskal pass, no solves, so there is nothing to save
/// by approximating it from below. What the coarse level actually
/// contributes is its *densification choices*: every learned coarse
/// edge that is **off** the coarse candidate's own MST is a pick, and
/// each pick expands to the strongest fine candidate edge crossing
/// between its two aggregates, at the fine edge's own eq.-(15) data
/// weight — exactly what the flat learner would have assigned.
/// Deterministic: crossing-edge winners are resolved in candidate edge
/// order with strict improvement, plus the adjacency tie-break of the
/// MST itself.
fn prolong(
    fine_candidate: &Graph,
    coarsening: &Coarsening,
    coarse_learned: &Graph,
) -> Result<Graph, SglError> {
    if coarse_learned.num_nodes() != coarsening.num_coarse() {
        return Err(SglError::InvalidGraph(format!(
            "prolong: learned graph has {} nodes, coarsening has {} aggregates",
            coarse_learned.num_nodes(),
            coarsening.num_coarse()
        )));
    }
    let part = coarsening.partition();

    // Base: the fine candidate's MST (Step 1b of the flat loop).
    let fine_tree = maximum_spanning_tree(fine_candidate);
    let mut out = fine_tree.to_graph(fine_candidate);

    // The strongest *off-tree* crossing edge per aggregate pair — the
    // same pool the flat learner densifies from — in one pass over the
    // fine candidate edge list.
    let mut best_cross: HashMap<(usize, usize), usize> = HashMap::new();
    for (i, e) in fine_candidate.edges().iter().enumerate() {
        if fine_tree.in_tree[i] {
            continue;
        }
        let (a, b) = (part[e.u], part[e.v]);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        match best_cross.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                if e.weight > fine_candidate.edge(*o.get()).weight {
                    o.insert(i);
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(i);
            }
        }
    }

    // The coarse picks: learned edges off the coarse candidate's MST,
    // each expanded to its strongest off-tree fine crossing edge (picks
    // whose every fine realization is already a tree edge are covered
    // and skipped).
    let coarse_candidate = coarsening.contract(fine_candidate);
    let coarse_tree = maximum_spanning_tree(&coarse_candidate);
    for ce in coarse_learned.edges() {
        if let Some(i) = coarse_candidate.find_edge(ce.u, ce.v) {
            if coarse_tree.in_tree[i] {
                continue; // base connectivity, already covered by the fine MST
            }
        }
        if let Some(&i) = best_cross.get(&(ce.u, ce.v)) {
            let e = fine_candidate.edge(i);
            out.add_edge(e.u, e.v, e.weight);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_core::Sgl;
    use sgl_graph::traversal::is_connected;

    fn quick_config() -> SglConfig {
        SglConfig::default().with_tol(1e-6).with_max_iterations(100)
    }

    fn quick_opts(coarsest: usize) -> MultilevelOptions {
        MultilevelOptions {
            hierarchy: HierarchyOptions {
                coarsest_size: coarsest,
                ..HierarchyOptions::default()
            },
            ..MultilevelOptions::default()
        }
    }

    #[test]
    fn learns_connected_ultra_sparse_graph_through_levels() {
        let truth = sgl_datasets::grid2d(16, 16);
        let meas = Measurements::generate(&truth, 25, 1).unwrap();
        let r = learn_multilevel(&quick_config(), &meas, &quick_opts(64)).unwrap();
        assert!(r.num_levels() >= 2, "sizes {:?}", r.level_sizes);
        assert_eq!(r.graph.num_nodes(), 256);
        assert!(is_connected(&r.graph));
        assert!(r.density() < 2.0, "density {}", r.density());
        assert!(r.scale_factor.is_some());
        assert!(r.solver_stats.solves > 0);
        // Reports walk coarsest → finest and end on the full node set.
        assert_eq!(
            r.reports.first().unwrap().nodes,
            *r.level_sizes.last().unwrap()
        );
        assert_eq!(r.reports.last().unwrap().nodes, 256);
    }

    #[test]
    fn spectrum_tracks_flat_learning() {
        use sgl_core::{compare_spectra, SpectrumMethod};
        let truth = sgl_datasets::grid2d(16, 16);
        let meas = Measurements::generate(&truth, 30, 3).unwrap();
        let flat = Sgl::new(quick_config()).learn(&meas).unwrap();
        let multi = learn_multilevel(&quick_config(), &meas, &quick_opts(64)).unwrap();
        let cmp =
            compare_spectra(&flat.graph, &multi.graph, 6, SpectrumMethod::ShiftInvert).unwrap();
        assert!(
            cmp.mean_relative_error < 0.10,
            "multilevel spectrum drifted {:.3} from flat",
            cmp.mean_relative_error
        );
        assert!(cmp.correlation > 0.98, "corr {}", cmp.correlation);
    }

    #[test]
    fn voltage_only_skips_scaling() {
        let truth = sgl_datasets::grid2d(12, 12);
        let meas = Measurements::generate(&truth, 20, 5).unwrap();
        let volts = Measurements::from_voltages(meas.voltages().clone()).unwrap();
        let r = learn_multilevel(&quick_config(), &volts, &quick_opts(48)).unwrap();
        assert!(r.scale_factor.is_none());
        assert!(is_connected(&r.graph));
    }

    #[test]
    fn single_level_hierarchy_degenerates_to_flat_session() {
        // max_levels = 1: no coarsening, the "coarsest" session IS the
        // fine session; prolongation never runs. Scaling is off so the
        // comparison is exact — with scaling on, the multilevel path
        // computes the global factor at `aux_rtol` accuracy, not the
        // policy's full tolerance.
        let truth = sgl_datasets::grid2d(8, 8);
        let meas = Measurements::generate(&truth, 20, 7).unwrap();
        let cfg = quick_config().with_max_levels(1).with_scale_edges(false);
        let multi = learn_multilevel(&cfg, &meas, &MultilevelOptions::default()).unwrap();
        let flat = Sgl::new(cfg).learn(&meas).unwrap();
        assert_eq!(multi.num_levels(), 1);
        assert_eq!(multi.graph.num_edges(), flat.graph.num_edges());
        for (a, b) in multi.graph.edges().iter().zip(flat.graph.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert_eq!(a.weight, b.weight);
        }
    }

    #[test]
    fn in_cycle_pruning_caps_density() {
        let truth = sgl_datasets::grid2d(14, 14);
        let meas = Measurements::generate(&truth, 25, 9).unwrap();
        let opts = MultilevelOptions {
            target_density: Some(1.05),
            ..quick_opts(49)
        };
        let r = learn_multilevel(&quick_config(), &meas, &opts).unwrap();
        assert!(r.density() <= 1.05 + 1e-12, "density {}", r.density());
        assert!(is_connected(&r.graph));
        assert!(r.reports.iter().any(|rep| rep.edges_pruned > 0));
    }

    #[test]
    fn node_mismatch_is_rejected() {
        let truth = sgl_datasets::grid2d(8, 8);
        let meas = Measurements::generate(&truth, 10, 11).unwrap();
        let wrong = sgl_datasets::grid2d(5, 5);
        assert!(learn_multilevel_from_candidate(
            &quick_config(),
            &meas,
            wrong,
            &MultilevelOptions::default()
        )
        .is_err());
    }
}
