//! Cross-crate contract of the parallel execution layer: parallelism
//! changes wall-clock, never results. The full learning loop, the
//! batched solve layer, and the kNN build must produce identical output
//! at every thread count — and two runs with the same config and seed
//! must agree exactly regardless of how many workers either used.

use sgl::prelude::*;
use sgl_core::resistance::{sample_node_pairs, ResistanceEstimator, SpectralSketch};
use sgl_graph::Graph;
use sgl_knn::{build_knn_graph, KnnGraphConfig};
use sgl_linalg::{par, vecops, DenseMatrix, Rng};
use sgl_multilevel::{spectral_affinity_aggregate, AggregationOptions};

fn learn_with_threads(parallelism: usize, seed: u64) -> LearnResult {
    let truth = sgl_datasets::grid2d(9, 9);
    let meas = Measurements::generate(&truth, 20, seed).unwrap();
    let cfg = SglConfig::builder()
        .tol(1e-6)
        .max_iterations(80)
        .parallelism(parallelism)
        .build()
        .unwrap();
    Sgl::new(cfg).learn(&meas).unwrap()
}

fn assert_graphs_identical(a: &Graph, b: &Graph, what: &str) {
    assert_eq!(a.num_edges(), b.num_edges(), "{what}: edge count");
    for (ea, eb) in a.edges().iter().zip(b.edges()) {
        assert_eq!((ea.u, ea.v), (eb.u, eb.v), "{what}: topology");
        assert_eq!(
            ea.weight, eb.weight,
            "{what}: weights must be bit-identical"
        );
    }
}

#[test]
fn learned_graph_is_identical_at_any_thread_count() {
    let serial = learn_with_threads(1, 5);
    for threads in [2usize, 4, 0] {
        let par_run = learn_with_threads(threads, 5);
        assert_graphs_identical(
            &serial.graph,
            &par_run.graph,
            &format!("parallelism={threads}"),
        );
        assert_eq!(serial.trace, par_run.trace, "parallelism={threads}: trace");
        assert_eq!(serial.scale_factor, par_run.scale_factor);
    }
}

#[test]
fn two_runs_same_seed_agree_across_thread_counts() {
    // The determinism contract as a user sees it: same config + seed ⇒
    // same learned graph, no matter which machine/thread-count ran it.
    let a = learn_with_threads(3, 11);
    let b = learn_with_threads(2, 11);
    assert_graphs_identical(&a.graph, &b.graph, "3 vs 2 workers");
}

#[test]
fn knn_graph_identical_at_any_thread_count() {
    let mut rng = Rng::seed_from_u64(3);
    let x = DenseMatrix::from_fn(150, 6, |_, _| rng.standard_normal());
    let cfg = KnnGraphConfig::default();
    let serial = par::with_threads(1, || build_knn_graph(&x, &cfg));
    for threads in [2usize, 5] {
        let g = par::with_threads(threads, || build_knn_graph(&x, &cfg));
        assert_graphs_identical(&serial, &g, &format!("knn at {threads} threads"));
    }
}

#[test]
fn batched_solves_identical_under_ambient_scope() {
    let g = sgl_datasets::grid2d(8, 8);
    let mut rng = Rng::seed_from_u64(9);
    let rhs: Vec<Vec<f64>> = (0..5)
        .map(|_| {
            let mut b = rng.normal_vec(64);
            vecops::project_out_mean(&mut b);
            b
        })
        .collect();
    let handle = SolverPolicy::default().build_handle(&g).unwrap();
    let serial = par::with_threads(1, || handle.solve_batch(&rhs).unwrap());
    for threads in [2usize, 4] {
        let par_xs = par::with_threads(threads, || handle.solve_batch(&rhs).unwrap());
        assert_eq!(par_xs, serial, "threads = {threads}");
    }
}

#[test]
fn pairwise_resistances_identical_at_any_thread_count() {
    let g = sgl_datasets::grid2d(7, 7);
    let sketch = SpectralSketch::build(&g, 0, 2).unwrap();
    let pairs = sample_node_pairs(49, 200, 4);
    let serial = par::with_threads(1, || sketch.resistances(&pairs).unwrap());
    let par_rs = par::with_threads(4, || sketch.resistances(&pairs).unwrap());
    assert_eq!(par_rs, serial);
}

/// Randomized delta-vs-fresh equivalence harness: starting from a grid,
/// apply `rounds` random edge-insertion/reweight batches through
/// `SolverContext::apply_deltas`, and after each batch check that the
/// (possibly Woodbury-corrected) context solve matches a from-scratch
/// factorization of the current graph to `rtol`-grade accuracy — at the
/// requested thread count.
fn check_delta_vs_fresh(method: PolicyMethod, threads: usize, seed: u64, rounds: usize) {
    use sgl_graph::EdgeDelta;
    use sgl_solver::SolverContext;

    let mut g = sgl_datasets::grid2d(7, 7);
    let n = g.num_nodes();
    let policy = SolverPolicy::default()
        .with_method(method)
        .with_parallelism(threads);
    let mut ctx = SolverContext::new(policy.clone());
    ctx.handle_for(&g).unwrap();
    let mut rng = Rng::seed_from_u64(seed);
    for round in 0..rounds {
        // A small random batch: mostly fresh chords, sometimes a
        // reweight of an existing edge.
        let mut deltas = Vec::new();
        for _ in 0..3 {
            let u = rng.below(n);
            let v = rng.below(n);
            if u == v {
                continue;
            }
            if let Some(i) = g.find_edge(u, v) {
                let e = g.edge(i);
                let w = e.weight * (0.5 + rng.uniform());
                g.set_weight(i, w);
                deltas.push(EdgeDelta::reweight(e.u, e.v, e.weight, w));
            } else {
                let w = 0.2 + rng.uniform();
                g.add_edge(u, v, w);
                deltas.push(EdgeDelta::insert(u, v, w));
            }
        }
        ctx.apply_deltas(&g, &deltas).unwrap();
        let mut b = rng.normal_vec(n);
        vecops::project_out_mean(&mut b);
        let x = ctx.handle_for(&g).unwrap().solve(&b).unwrap();
        let fresh = policy.build_handle(&g).unwrap();
        let y = fresh.solve(&b).unwrap();
        let d = vecops::sub(&x, &y);
        let rel = vecops::norm2(&d) / vecops::norm2(&y).max(1e-300);
        assert!(
            rel < 1e-7,
            "{method:?} at {threads} threads, round {round}: \
             delta-revised solve drifted {rel:.3e} from fresh factorization"
        );
    }
    // The context must have actually exercised the incremental path at
    // least once over the run (the default policy's rank cap is far
    // above these batch sizes).
    assert!(
        ctx.revision_stats().delta_updates > 0,
        "{method:?}: no delta batch was absorbed incrementally"
    );
}

#[test]
fn delta_revised_solves_match_fresh_factorizations() {
    // All three PCG preconditioners of the facade (tree, IC(0), AMG),
    // at 1 thread and at N.
    for method in [
        PolicyMethod::TreePcg,
        PolicyMethod::IcholPcg,
        PolicyMethod::AmgPcg,
    ] {
        for threads in [1usize, 4] {
            check_delta_vs_fresh(method, threads, 0xD17A, 5);
        }
    }
}

#[test]
fn delta_revised_batch_solves_identical_at_any_thread_count() {
    use sgl_graph::EdgeDelta;
    use sgl_solver::SolverContext;

    // The Woodbury-corrected handle honors the same determinism
    // contract as the backend handles: batch solves are bit-identical
    // across thread counts.
    let mut g = sgl_datasets::grid2d(8, 8);
    let mut ctx = SolverContext::new(SolverPolicy::default());
    ctx.handle_for(&g).unwrap();
    let mut deltas = Vec::new();
    for &(u, v, w) in &[(0usize, 20usize, 0.9), (5, 40, 1.3), (17, 60, 0.4)] {
        g.add_edge(u, v, w);
        deltas.push(EdgeDelta::insert(u, v, w));
    }
    ctx.apply_deltas(&g, &deltas).unwrap();
    let handle = ctx.handle_for(&g).unwrap();
    assert_eq!(handle.method_name(), "revision-stale-precond");
    let mut rng = Rng::seed_from_u64(31);
    let rhs: Vec<Vec<f64>> = (0..5)
        .map(|_| {
            let mut b = rng.normal_vec(64);
            vecops::project_out_mean(&mut b);
            b
        })
        .collect();
    let serial = par::with_threads(1, || handle.solve_batch(&rhs).unwrap());
    for threads in [2usize, 4] {
        let par_xs = par::with_threads(threads, || handle.solve_batch(&rhs).unwrap());
        assert_eq!(par_xs, serial, "threads = {threads}");
    }
}

#[cfg(feature = "property-tests")]
mod delta_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Property form of the delta-vs-fresh contract: any seed, any
        /// preconditioner, any thread count — a Woodbury/stale-
        /// preconditioned solve after `apply_deltas` matches a
        /// from-scratch factorization to rtol.
        #[test]
        fn delta_solves_match_fresh(
            seed in 0u64..1_000,
            method_ix in 0usize..3,
            threads in 1usize..5,
        ) {
            let method = [
                PolicyMethod::TreePcg,
                PolicyMethod::IcholPcg,
                PolicyMethod::AmgPcg,
            ][method_ix];
            check_delta_vs_fresh(method, threads, seed, 3);
        }
    }
}

#[test]
fn served_snapshot_queries_identical_at_any_thread_count() {
    // The serving layer inherits the determinism contract: a pinned
    // GraphSnapshot answers resistance and interpolation queries
    // bit-identically at every ambient worker count, and the
    // micro-batched handle path reproduces the direct snapshot path.
    let truth = sgl_datasets::grid2d(8, 8);
    let meas = Measurements::generate(&truth, 15, 3).unwrap();
    let cfg = SglConfig::builder()
        .tol(0.0)
        .max_iterations(5)
        .build()
        .unwrap();
    let mut session = SglSession::from_owned(cfg, meas).unwrap();
    session.run_to_completion().unwrap();
    let server = SglServer::new(session, ServeOptions::default()).unwrap();
    let snap = server.handle().snapshot();

    let pairs = sample_node_pairs(64, 40, 8);
    let mut injection = vec![0.0; 64];
    injection[0] = 1.0;
    injection[63] = -1.0;

    let serial_r = par::with_threads(1, || snap.resistances(&pairs).unwrap());
    let serial_v = par::with_threads(1, || snap.interpolate(&injection).unwrap());
    for threads in [2usize, 4] {
        let par_r = par::with_threads(threads, || snap.resistances(&pairs).unwrap());
        let par_v = par::with_threads(threads, || snap.interpolate(&injection).unwrap());
        assert_eq!(par_r, serial_r, "resistances at {threads} threads");
        assert_eq!(par_v, serial_v, "interpolation at {threads} threads");
    }

    let handle = server.handle();
    assert_eq!(handle.resistances(&pairs).unwrap().value, serial_r);
    assert_eq!(handle.interpolate(&injection).unwrap().value, serial_v);
}

#[test]
fn clustering_partitions_identical_at_any_thread_count() {
    use sgl_core::clustering::{kmeans, spectral_clustering};
    // kmeans on raw rows and the full spectral pipeline: the partition
    // must not depend on the ambient worker count.
    let mut rng = Rng::seed_from_u64(21);
    let data = DenseMatrix::from_fn(120, 4, |_, _| rng.standard_normal());
    let serial_km = par::with_threads(1, || kmeans(&data, 4, 7, 100));
    let ambient_km = kmeans(&data, 4, 7, 100);
    assert_eq!(serial_km.labels, ambient_km.labels);

    let g = sgl_datasets::grid2d(9, 9);
    let serial = par::with_threads(1, || spectral_clustering(&g, 3, 5).unwrap());
    let ambient = spectral_clustering(&g, 3, 5).unwrap();
    let par4 = par::with_threads(4, || spectral_clustering(&g, 3, 5).unwrap());
    assert_eq!(serial, ambient);
    assert_eq!(serial, par4);
}

#[test]
fn spectral_aggregation_partitions_identical_at_any_thread_count() {
    use sgl_graph::laplacian::LaplacianOp;
    use sgl_linalg::filter::{smoothed_test_vectors, FilterOptions};
    let g = sgl_datasets::grid2d(12, 12);
    let aggregate = || {
        let vectors = smoothed_test_vectors(
            &LaplacianOp::new(&g),
            &g.weighted_degrees(),
            &FilterOptions::default(),
        );
        spectral_affinity_aggregate(&g, &vectors, &AggregationOptions::default()).unwrap()
    };
    let serial = par::with_threads(1, aggregate);
    let ambient = aggregate();
    let par4 = par::with_threads(4, aggregate);
    assert_eq!(serial.partition(), ambient.partition());
    assert_eq!(serial.partition(), par4.partition());
    assert_eq!(serial.num_coarse(), par4.num_coarse());
}
