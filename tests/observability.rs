//! Cross-crate contract of the tracing/metrics layer (`sgl-trace`):
//! observability must be *free* when off and *inert* when on.
//!
//! * The recorder never touches the deterministic control path: the
//!   learned graph, iteration trace, and scale factor are bit-identical
//!   with tracing enabled or disabled, at 1 worker thread and at N.
//! * Counter totals are bit-stable across thread counts — the registry
//!   counts algorithmic work (iterations, solves, PCG sweeps), none of
//!   which may depend on the fork-join fan-out.
//! * Histogram percentiles track an exact reference within the log₂
//!   bucket bound (a factor of 2).
//! * The Chrome-trace exporter emits valid JSON with the per-iteration
//!   phase spans the profile tooling keys on.
//!
//! Tests that flip the global recorder serialize on
//! [`sgl_trace::test_guard`] so parallel test threads cannot interleave
//! enable/drain windows.

use sgl::prelude::*;

/// One deterministic learn run at the given parallelism.
fn learn(parallelism: usize) -> LearnResult {
    let truth = sgl_datasets::grid2d(8, 8);
    let meas = Measurements::generate(&truth, 16, 5).unwrap();
    let cfg = SglConfig::default()
        .with_tol(1e-5)
        .with_max_iterations(40)
        .with_scale_edges(true)
        .with_parallelism(parallelism);
    Sgl::new(cfg).learn(&meas).unwrap()
}

/// Bit-level equality of two learn results: edges, weights, iteration
/// trace, and the Step-5 scale factor.
fn assert_bit_identical(a: &LearnResult, b: &LearnResult, what: &str) {
    assert_eq!(a.graph.num_edges(), b.graph.num_edges(), "{what}: edges");
    for (ea, eb) in a.graph.edges().iter().zip(b.graph.edges()) {
        assert_eq!((ea.u, ea.v), (eb.u, eb.v), "{what}: topology");
        assert_eq!(
            ea.weight.to_bits(),
            eb.weight.to_bits(),
            "{what}: weight bits"
        );
    }
    assert_eq!(a.trace, b.trace, "{what}: iteration trace");
    assert_eq!(
        a.scale_factor.map(f64::to_bits),
        b.scale_factor.map(f64::to_bits),
        "{what}: scale factor bits"
    );
}

#[test]
fn recorder_never_perturbs_results_at_any_thread_count() {
    let _guard = sgl_trace::test_guard();
    sgl_trace::disable();
    sgl_trace::clear();

    let off_1 = learn(1);
    let off_2 = learn(2);
    assert_bit_identical(&off_1, &off_2, "recorder off, 1 vs 2 threads");
    assert!(
        sgl_trace::take_events().is_empty(),
        "disabled recorder captured events"
    );

    sgl_trace::enable();
    let on_1 = learn(1);
    let events_1 = sgl_trace::take_events();
    let on_2 = learn(2);
    let events_2 = sgl_trace::take_events();
    sgl_trace::disable();
    sgl_trace::clear();

    assert_bit_identical(&off_1, &on_1, "recorder on vs off, 1 thread");
    assert_bit_identical(&off_2, &on_2, "recorder on vs off, 2 threads");
    assert!(!events_1.is_empty() && !events_2.is_empty());

    // The span tree carries the per-iteration phases the profile
    // tooling keys on.
    for events in [&events_1, &events_2] {
        for phase in ["iteration", "score", "densify", "refine", "knn_build"] {
            assert!(
                events.iter().any(|e| e.name == phase),
                "traced run is missing the `{phase}` span"
            );
        }
    }
    // The 2-thread run fans out, so at least one parallel-region span
    // must come from a non-primary thread id.
    let par_spans: Vec<_> = events_2
        .iter()
        .filter(|e| e.name.starts_with("par_"))
        .collect();
    assert!(
        !par_spans.is_empty(),
        "2-thread run recorded no parallel-region spans"
    );
}

#[test]
fn counter_totals_are_bit_stable_across_thread_counts() {
    let _guard = sgl_trace::test_guard();
    sgl_trace::clear();
    sgl_trace::enable();

    let totals = |parallelism: usize| {
        sgl_trace::reset_metrics();
        let result = learn(parallelism);
        sgl_trace::clear();
        let counters: std::collections::BTreeMap<&'static str, u64> =
            sgl_trace::counters_snapshot()
                .into_iter()
                .map(|c| (c.name, c.value))
                .collect();
        (result, counters)
    };
    let (result_1, counters_1) = totals(1);
    let (_result_2, counters_2) = totals(2);
    sgl_trace::disable();

    // The work counters measure algorithmic progress, which the
    // determinism contract pins across thread counts.
    for name in [
        "session.iterations",
        "session.edges_added",
        "solver.solves",
        "solver.pcg_iterations_total",
        "solver.handles_built",
    ] {
        assert_eq!(
            counters_1.get(name),
            counters_2.get(name),
            "counter `{name}` drifted across thread counts"
        );
    }
    assert_eq!(
        counters_1.get("session.iterations").copied(),
        Some(result_1.trace.len() as u64),
        "session.iterations disagrees with the iteration trace"
    );
}

#[test]
fn histogram_percentiles_track_exact_reference() {
    // Pure histogram math — no global state. A deterministic LCG stream
    // with a heavy tail, checked against exact order statistics.
    let h = sgl_trace::Histogram::new();
    let mut values: Vec<u64> = Vec::new();
    let mut x: u64 = 0x2545_F491_4F6C_DD1D;
    for _ in 0..10_000 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = (x >> 33) % 1_000_000;
        values.push(v);
        h.record(v);
    }
    values.sort_unstable();
    for p in [50.0, 90.0, 99.0] {
        let exact =
            values[((p / 100.0 * values.len() as f64).ceil() as usize - 1).min(values.len() - 1)];
        let approx = h.percentile(p);
        let (lo, hi) = (exact as f64 / 2.0, exact as f64 * 2.0);
        assert!(
            (approx as f64) >= lo && (approx as f64) <= hi.max(1.0),
            "p{p}: approx {approx} outside factor-2 band of exact {exact}"
        );
    }
    assert_eq!(h.count(), 10_000);
    assert_eq!(h.min(), values[0]);
    assert_eq!(h.max(), *values.last().unwrap());
}

#[test]
fn chrome_trace_exporter_emits_valid_json() {
    let _guard = sgl_trace::test_guard();
    sgl_trace::clear();
    sgl_trace::enable();
    let _ = learn(1);
    sgl_trace::disable();
    let events = sgl_trace::take_events();
    assert!(!events.is_empty());

    let text = sgl_trace::chrome_trace_json(&events);
    let mut p = Json::new(&text);
    p.value()
        .unwrap_or_else(|e| panic!("invalid chrome trace JSON: {e}\n{text}"));
    p.eof().expect("trailing garbage after JSON document");
    assert!(text.contains("\"traceEvents\""));
    assert!(text.contains("\"ph\":\"X\""));

    // Folded stacks: `root;child value` lines, one per call path, with
    // iteration phases nested under their iteration span.
    let folded = sgl_trace::folded_stacks(&events);
    assert!(folded.lines().count() > 0);
    assert!(
        folded.lines().any(|l| l.starts_with("iteration;")),
        "no phase nested under `iteration` in:\n{folded}"
    );
    for line in folded.lines() {
        let (_stack, value) = line.rsplit_once(' ').expect("`stack value` shape");
        value.parse::<u64>().expect("integer folded value");
    }

    // The plain-text summary renders without panicking and mentions the
    // hot phase.
    let summary = sgl_trace::summary(&events);
    assert!(summary.contains("iteration"));
}

#[test]
fn serve_stats_surface_server_side_latency() {
    // The per-server histograms are always on — no recorder involved.
    let truth = sgl_datasets::grid2d(5, 5);
    let meas = Measurements::generate(&truth, 10, 3).unwrap();
    let cfg = SglConfig::builder()
        .k(4)
        .r(4)
        .tol(0.0)
        .max_iterations(3)
        .build()
        .unwrap();
    let mut session = SglSession::from_owned(cfg, meas).unwrap();
    session.run_to_completion().unwrap();
    let server = SglServer::new(session, ServeOptions::default()).unwrap();
    let reader = server.handle();
    for i in 0..8 {
        reader.resistances(&[(0, 12 + i)]).unwrap();
    }
    let stats = server.stats();
    assert!(stats.queries_answered >= 8);
    assert!(
        stats.query_latency_p50_ms > 0.0 && stats.query_latency_p99_ms > 0.0,
        "server-side latency histogram recorded nothing: {stats:?}"
    );
    assert!(
        stats.query_latency_p50_ms <= stats.query_latency_p99_ms,
        "p50 {} above p99 {}",
        stats.query_latency_p50_ms,
        stats.query_latency_p99_ms
    );
    assert!(stats.queue_wait_p50_ms <= stats.queue_wait_p99_ms);
}

/// Minimal recursive-descent JSON validator (no serde in the offline
/// image): accepts exactly the RFC 8259 grammar, rejects everything
/// else with a byte offset.
struct Json<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Json<'a> {
    fn new(text: &'a str) -> Self {
        Json {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.string()?;
            self.eat(b':')?;
            self.value()?;
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => return Err(format!("bad object at byte {}: {other:?}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => return Err(format!("bad array at byte {}: {other:?}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(&c) = self.bytes.get(self.pos) {
            self.pos += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "truncated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                        b'u' => {
                            for _ in 0..4 {
                                let h = self.bytes.get(self.pos).copied().unwrap_or(0);
                                if !h.is_ascii_hexdigit() {
                                    return Err(format!("bad \\u escape at byte {}", self.pos));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                0x00..=0x1f => return Err(format!("raw control byte at {}", self.pos - 1)),
                _ => {}
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while p.bytes.get(p.pos).is_some_and(u8::is_ascii_digit) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(format!("bad number at byte {start}"));
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("bad fraction at byte {}", self.pos));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("bad exponent at byte {}", self.pos));
            }
        }
        Ok(())
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        self.ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn eof(&mut self) -> Result<(), String> {
        self.ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("trailing bytes at {}", self.pos))
        }
    }
}
