//! The `SglSession` facade contract: a step-wise session run must be
//! indistinguishable from one-shot `Sgl::learn`, observers must see the
//! complete trace, and the dense reference eigensolver backend must
//! learn the same edge set as the default iterative backend.

use sgl::prelude::*;
use sgl_core::SessionObserver;
use std::sync::{Arc, Mutex};

fn config(tol: f64) -> SglConfig {
    SglConfig::builder()
        .tol(tol)
        .max_iterations(120)
        .build()
        .unwrap()
}

fn assert_same_result(a: &LearnResult, b: &LearnResult) {
    assert_eq!(a.trace, b.trace, "traces differ");
    assert_eq!(a.converged, b.converged);
    match (a.scale_factor, b.scale_factor) {
        (Some(x), Some(y)) => assert!((x - y).abs() < 1e-12, "scale {x} vs {y}"),
        (x, y) => assert_eq!(x, y),
    }
    assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    for (ea, eb) in a.graph.edges().iter().zip(b.graph.edges()) {
        assert_eq!((ea.u, ea.v), (eb.u, eb.v), "edge order differs");
        assert!((ea.weight - eb.weight).abs() < 1e-12);
    }
}

/// Property (checked over a grid of shapes, seeds, and measurement
/// counts): driving the loop one step at a time produces exactly the
/// graph, trace, and scale factor of the one-shot facade.
#[test]
fn stepwise_session_equals_one_shot_learn() {
    for &(rows, cols, m, seed) in &[
        (8usize, 8usize, 20usize, 1u64),
        (9, 7, 25, 2),
        (10, 10, 16, 3),
        (6, 12, 30, 4),
    ] {
        let truth = sgl_datasets::grid2d(rows, cols);
        let meas = Measurements::generate(&truth, m, seed).unwrap();
        let oneshot = Sgl::new(config(1e-6)).learn(&meas).unwrap();

        let mut session = SglSession::new(config(1e-6), &meas).unwrap();
        let mut steps = 0;
        while !session.is_done() {
            match session.step().unwrap() {
                StepOutcome::AlreadyDone => panic!("stepped a halted session"),
                _ => steps += 1,
            }
            assert!(steps <= 1000, "runaway loop");
        }
        let stepped = session.finish().unwrap();
        assert_same_result(&stepped, &oneshot);
    }
}

/// Acceptance criterion: an observer registered on a session sees every
/// `IterationRecord` that `LearnResult.trace` contains, in order.
#[test]
fn observer_sees_exactly_the_trace() {
    let truth = sgl_datasets::grid2d(10, 10);
    let meas = Measurements::generate(&truth, 25, 5).unwrap();
    let seen: Arc<Mutex<Vec<IterationRecord>>> = Arc::default();
    let sink = Arc::clone(&seen);

    let mut session = SglSession::new(config(1e-6), &meas).unwrap();
    session.observe(move |r: &IterationRecord| sink.lock().unwrap().push(*r));
    session.run_to_completion().unwrap();
    let result = session.finish().unwrap();

    assert!(!result.trace.is_empty());
    assert_eq!(&*seen.lock().unwrap(), &result.trace);
}

/// A trait-object observer also receives the finish notification with
/// the final result.
#[test]
fn trait_observer_receives_finish() {
    struct Counter {
        iterations: Arc<Mutex<usize>>,
        finished: Arc<Mutex<Option<usize>>>,
    }
    impl SessionObserver for Counter {
        fn on_iteration(&mut self, _r: &IterationRecord) {
            *self.iterations.lock().unwrap() += 1;
        }
        fn on_finish(&mut self, result: &LearnResult) {
            *self.finished.lock().unwrap() = Some(result.trace.len());
        }
    }

    let truth = sgl_datasets::grid2d(8, 8);
    let meas = Measurements::generate(&truth, 20, 6).unwrap();
    let iterations = Arc::new(Mutex::new(0));
    let finished = Arc::new(Mutex::new(None));
    let mut session = SglSession::new(config(1e-6), &meas).unwrap();
    session.observe(Counter {
        iterations: Arc::clone(&iterations),
        finished: Arc::clone(&finished),
    });
    let result = session.run().unwrap();
    assert_eq!(*iterations.lock().unwrap(), result.trace.len());
    assert_eq!(*finished.lock().unwrap(), Some(result.trace.len()));
}

/// Acceptance criterion: swapping `DenseEigBackend` for the default
/// backend on an 8×8 grid changes the learned edge set by zero edges at
/// `tol = 1e-4`.
#[test]
fn dense_and_lanczos_backends_agree_on_small_grids() {
    for &(rows, cols, seed) in &[(8usize, 8usize, 7u64), (6, 6, 8), (7, 5, 9)] {
        let truth = sgl_datasets::grid2d(rows, cols);
        let meas = Measurements::generate(&truth, 20, seed).unwrap();
        let cfg = config(1e-4);

        let lanczos = SglSession::new(cfg.clone(), &meas)
            .unwrap()
            .with_embedding_backend(Box::new(LanczosBackend))
            .run()
            .unwrap();
        let dense = SglSession::new(cfg, &meas)
            .unwrap()
            .with_embedding_backend(Box::new(DenseEigBackend::default()))
            .run()
            .unwrap();

        let edges = |r: &LearnResult| -> std::collections::BTreeSet<(usize, usize)> {
            r.graph.edges().iter().map(|e| (e.u, e.v)).collect()
        };
        let a = edges(&lanczos);
        let b = edges(&dense);
        let diff = a.symmetric_difference(&b).count();
        assert_eq!(
            diff, 0,
            "{rows}x{cols} seed {seed}: backends disagree on {diff} edges"
        );
    }
}

/// Incremental sessions: feeding the same measurements in two batches
/// still learns a connected ultra-sparse graph over the full data.
#[test]
fn incremental_batches_learn_a_comparable_graph() {
    let truth = sgl_datasets::grid2d(9, 9);
    let n = truth.num_nodes();
    let all = Measurements::generate(&truth, 30, 10).unwrap();
    let split = 15;
    let col_batch = |lo: usize, hi: usize| {
        let cols: Vec<Vec<f64>> = (lo..hi).map(|j| all.voltages().column(j)).collect();
        Measurements::from_voltages(sgl_linalg::DenseMatrix::from_columns(&cols)).unwrap()
    };

    let first = col_batch(0, split);
    let mut session = SglSession::new(config(1e-6), &first).unwrap();
    session.run_to_completion().unwrap();
    session.extend_measurements(&col_batch(split, 30)).unwrap();
    session.run_to_completion().unwrap();
    let incremental = session.finish().unwrap();

    assert!(sgl_graph::traversal::is_connected(&incremental.graph));
    assert_eq!(incremental.graph.num_nodes(), n);
    assert!(incremental.density() < 2.0);
    // The trace spans both epochs with consistent numbering.
    for w in incremental.trace.windows(2) {
        assert_eq!(w[1].iteration, w[0].iteration + 1);
        assert!(w[1].total_edges >= w[0].total_edges);
    }
}
