//! Baseline comparisons: SGL vs the scaled-kNN graph (the paper's
//! comparison) and vs a dense projected-gradient optimizer of the same
//! objective (the expensive reference SGL is designed to replace).

use sgl::prelude::*;
use sgl_baseline::{knn_baseline, DenseGspEstimator, DenseGspOptions};
use sgl_core::{objective, ObjectiveOptions};
use sgl_knn::{build_knn_graph, KnnGraphConfig};

#[test]
fn sgl_beats_unscaled_5nn_objective() {
    // Fig. 2's structural claim: 5NN = SGL's edge set plus extra edges
    // whose sensitivities are negative, so the unscaled kNN-weighted 5NN
    // graph scores strictly worse.
    let truth = sgl_datasets::grid2d(12, 12);
    let meas = Measurements::generate(&truth, 40, 1).unwrap();
    let result = Sgl::new(SglConfig::default().with_tol(1e-9).with_max_iterations(150))
        .learn(&meas)
        .unwrap();
    let opts = ObjectiveOptions::default();
    let f_sgl = objective(
        &result
            .graph_at_iteration(result.trace.len() - 1)
            .expect("trace index in range"),
        &meas,
        &opts,
    )
    .unwrap()
    .total;
    let f_knn = objective(&result.knn_graph, &meas, &opts).unwrap().total;
    assert!(
        f_sgl > f_knn,
        "SGL {f_sgl} should beat unscaled 5NN {f_knn}"
    );
}

#[test]
fn sgl_is_much_sparser_than_5nn() {
    let truth = sgl_datasets::grid2d(12, 12);
    let meas = Measurements::generate(&truth, 40, 2).unwrap();
    let result = Sgl::new(SglConfig::default().with_tol(1e-9).with_max_iterations(150))
        .learn(&meas)
        .unwrap();
    let (knn, factor) = knn_baseline(&meas, 5).unwrap();
    assert!(factor.is_some());
    assert!(
        knn.density() > 2.0 * result.density(),
        "kNN {} vs SGL {}",
        knn.density(),
        result.density()
    );
}

#[test]
fn sgl_tracks_the_dense_optimizer() {
    // On a small instance, run the O(N³)-per-iteration dense estimator
    // seeded with the same kNN candidates. SGL's solution (same candidate
    // pool, greedy stagewise instead of full gradient) should land within
    // a modest gap of the dense reference optimum.
    let truth = sgl_datasets::grid2d(7, 7);
    let meas = Measurements::generate(&truth, 30, 3).unwrap();
    let knn = build_knn_graph(
        meas.voltages(),
        &KnnGraphConfig {
            k: 5,
            ..KnnGraphConfig::default()
        },
    );

    let dense = DenseGspEstimator::new(DenseGspOptions {
        max_iterations: 150,
        ..DenseGspOptions::default()
    })
    .estimate(&meas, &knn)
    .unwrap();

    let result = Sgl::new(
        SglConfig::default()
            .with_tol(1e-10)
            .with_max_iterations(150),
    )
    .learn_from_knn(&meas, knn)
    .unwrap();

    // Evaluate both under the same (finite-sigma) objective used by the
    // dense estimator.
    let opts = ObjectiveOptions {
        num_eigenvalues: 48,
        sigma_sq: 1e4,
        ..ObjectiveOptions::default()
    };
    let f_dense = objective(&dense.graph, &meas, &opts).unwrap().total;
    let f_sgl = objective(
        &result
            .graph_at_iteration(result.trace.len() - 1)
            .expect("trace index in range"),
        &meas,
        &opts,
    )
    .unwrap()
    .total;
    // The dense optimizer may tune weights continuously, so it can edge
    // ahead; SGL must stay within a small absolute gap of it.
    let gap = f_dense - f_sgl;
    assert!(
        gap < 25.0,
        "SGL ({f_sgl}) too far below dense reference ({f_dense})"
    );
}

#[test]
fn l1_pressure_shrinks_total_weight() {
    let truth = sgl_datasets::grid2d(6, 6);
    let meas = Measurements::generate(&truth, 25, 4).unwrap();
    let knn = build_knn_graph(
        meas.voltages(),
        &KnnGraphConfig {
            k: 6,
            ..KnnGraphConfig::default()
        },
    );
    let total = |g: &sgl_graph::Graph| -> f64 { g.edges().iter().map(|e| e.weight).sum() };
    let run = |beta: f64| {
        DenseGspEstimator::new(DenseGspOptions {
            beta,
            max_iterations: 80,
            ..DenseGspOptions::default()
        })
        .estimate(&meas, &knn)
        .unwrap()
    };
    let free = run(0.0);
    let pressured = run(1.0);
    assert!(
        total(&pressured.graph) < total(&free.graph),
        "l1 pressure should shrink total weight: {} vs {}",
        total(&pressured.graph),
        total(&free.graph)
    );
}
