//! Resilience contract of the network front-end: adversarial clients —
//! malformed requests, slowloris trickles, half-open connections,
//! overload bursts, and a faulting ingest path — are shed or rejected
//! cleanly while well-formed queries keep getting bit-exact,
//! version-consistent answers. The server never crashes, never hangs a
//! worker, and never lets junk on the wire perturb the learned state.

use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use sgl::prelude::*;
use sgl_linalg::DenseMatrix;
use sgl_net::client;
use sgl_net::json;
use sgl_net::server::loopback;

/// An under-fitted owned session over the first `initial` of `m`
/// columns of a fixed seeded mesh — deterministic, so two calls build
/// bit-identical servers (the A/B control).
fn fixture(initial: usize) -> (SglSession<'static>, Graph, Measurements) {
    let truth = sgl_datasets::grid2d(6, 6);
    let all = Measurements::generate(&truth, 12, 7).unwrap();
    let cfg = SglConfig::builder()
        .k(4)
        .r(4)
        .tol(0.0)
        .max_iterations(4)
        .build()
        .unwrap();
    let cols: Vec<Vec<f64>> = (0..initial).map(|j| all.voltages().column(j)).collect();
    let first = Measurements::from_voltages(DenseMatrix::from_columns(&cols)).unwrap();
    let mut session = SglSession::from_owned(cfg, first).unwrap();
    session.run_to_completion().unwrap();
    (session, truth, all)
}

fn net_server(opts: NetOptions) -> NetServer {
    net_server_with(ServeOptions::default(), opts)
}

fn net_server_with(serve_opts: ServeOptions, opts: NetOptions) -> NetServer {
    let (session, _, _) = fixture(8);
    let server = SglServer::new(session, serve_opts).unwrap();
    NetServer::bind(server, loopback(), opts).unwrap()
}

/// JSON body for `POST /ingest` holding `batch`'s voltage columns.
fn ingest_body(batch: &Measurements) -> String {
    let cols: Vec<Vec<f64>> = (0..batch.num_measurements())
        .map(|j| batch.voltages().column(j))
        .collect();
    format!("{{\"columns\":{}}}", json::f64_matrix(&cols))
}

/// The table-driven malformed-request suite: every adversarial payload
/// gets the expected clean status (or a silent close when there is
/// nobody left to answer), and — the A/B half — a barraged server still
/// answers bit-identically to an untouched control twin.
#[test]
fn malformed_requests_get_clean_4xx_without_perturbing_the_session() {
    let (control_session, _, _) = fixture(8);
    let control = SglServer::new(control_session, ServeOptions::default()).unwrap();
    let net = net_server(NetOptions::default());
    let addr = net.local_addr();

    let huge = "x".repeat(16 * 1024);
    let many_headers = {
        let mut h = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..100 {
            h.push_str(&format!("x-h{i}: v\r\n"));
        }
        h.push_str("\r\n");
        h
    };
    // (name, raw request bytes, expected status; None = connection
    // closed without a response because the client broke the framing).
    let table: Vec<(&str, Vec<u8>, Option<u16>)> = vec![
        ("bad verb", b"BREW /coffee HTTP/1.1\r\n\r\n".to_vec(), Some(400)),
        ("unserved verb", b"DELETE /stats HTTP/1.1\r\n\r\n".to_vec(), Some(405)),
        ("unknown route", b"GET /nope HTTP/1.1\r\ncontent-length: 0\r\n\r\n".to_vec(), Some(404)),
        ("bad protocol", b"GET /healthz SPDY/9\r\n\r\n".to_vec(), Some(400)),
        ("relative target", b"GET healthz HTTP/1.1\r\n\r\n".to_vec(), Some(400)),
        ("empty request line", b"\r\n\r\n".to_vec(), Some(400)),
        ("binary junk head", b"\x00\x01\x02\x7f\r\n\r\n".to_vec(), Some(400)),
        (
            "absurd content-length",
            b"POST /resistances HTTP/1.1\r\ncontent-length: 99999999999999\r\n\r\n".to_vec(),
            Some(413),
        ),
        (
            "negative content-length",
            b"POST /resistances HTTP/1.1\r\ncontent-length: -1\r\n\r\n".to_vec(),
            Some(400),
        ),
        (
            "non-numeric content-length",
            b"POST /resistances HTTP/1.1\r\ncontent-length: ten\r\n\r\n".to_vec(),
            Some(400),
        ),
        (
            "chunked framing",
            b"POST /resistances HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n".to_vec(),
            Some(400),
        ),
        (
            "header without colon",
            b"GET /healthz HTTP/1.1\r\nnocolonhere\r\n\r\n".to_vec(),
            Some(400),
        ),
        (
            "oversized header line",
            format!("GET /healthz HTTP/1.1\r\nx-big: {huge}\r\n\r\n").into_bytes(),
            Some(431),
        ),
        ("header spam", many_headers.into_bytes(), Some(431)),
        (
            "non-UTF-8 body",
            b"POST /resistances HTTP/1.1\r\ncontent-length: 4\r\n\r\n\xff\xfe\x01\x02".to_vec(),
            Some(400),
        ),
        (
            "invalid JSON body",
            b"POST /resistances HTTP/1.1\r\ncontent-length: 9\r\n\r\n{\"pairs\":".to_vec(),
            Some(400),
        ),
        (
            "missing field",
            b"POST /resistances HTTP/1.1\r\ncontent-length: 13\r\n\r\n{\"wrong\":[1]}".to_vec(),
            Some(400),
        ),
        (
            "ragged matrix",
            b"POST /interpolate HTTP/1.1\r\ncontent-length: 32\r\n\r\n{\"injections\":[[1,2],[1,2,3,4]]}"
                .to_vec(),
            Some(400),
        ),
        (
            "out-of-range pair",
            b"POST /resistances HTTP/1.1\r\ncontent-length: 22\r\n\r\n{\"pairs\":[[0,999999]]}".to_vec(),
            Some(400),
        ),
        (
            "bad deadline header",
            b"POST /resistances HTTP/1.1\r\nx-sgl-deadline-ms: soon\r\ncontent-length: 19\r\n\r\n{\"pairs\":[[0, 1]]}\n"
                .to_vec(),
            Some(400),
        ),
        (
            "truncated head",
            b"GET /healthz HTTP/1.1\r\nx-trunc".to_vec(),
            None,
        ),
        (
            "body shorter than declared",
            b"POST /resistances HTTP/1.1\r\ncontent-length: 500\r\n\r\n{\"pairs\"".to_vec(),
            None,
        ),
    ];

    for (name, bytes, expected) in &table {
        let got = client::raw(addr, bytes);
        match expected {
            Some(status) => {
                let reply = got.unwrap_or_else(|e| panic!("{name}: no reply ({e})"));
                assert_eq!(
                    reply.status,
                    *status,
                    "{name}: wrong status ({})",
                    reply.text()
                );
                // Every error is a parseable JSON envelope.
                let parsed = reply
                    .json()
                    .unwrap_or_else(|e| panic!("{name}: bad JSON ({e})"));
                assert!(parsed.get("error").is_some(), "{name}: no error field");
            }
            None => assert!(got.is_err(), "{name}: expected a silent close"),
        }
    }

    // A/B: the barraged server answers bit-identically to the twin
    // that never saw a single adversarial byte.
    let pairs = [(0usize, 1usize), (3, 17), (10, 35)];
    let expect = control.handle().resistances(&pairs).unwrap();
    let reply = client::post(addr, "/resistances", "{\"pairs\":[[0,1],[3,17],[10,35]]}").unwrap();
    assert_eq!(reply.status, 200);
    let parsed = reply.json().unwrap();
    assert_eq!(parsed.get("version").and_then(|v| v.as_usize()), Some(0));
    let got: Vec<f64> = parsed
        .get("resistances")
        .and_then(|v| v.as_array())
        .unwrap()
        .iter()
        .map(|x| x.as_f64().unwrap())
        .collect();
    assert_eq!(got, expect.value, "network answer diverged from control");

    // Nothing on the wire reached the learned state.
    let serve = net.serve_stats();
    assert_eq!(serve.version, 0);
    assert_eq!(serve.writer_restarts, 0);
    assert_eq!(serve.batches_quarantined, 0);
    let stats = net.stats();
    // Every answered adversarial request lands in the failure ledger;
    // the parse-level subset (unreadable before dispatch) also counts
    // as malformed.
    let expected_4xx = table.iter().filter(|(_, _, e)| e.is_some()).count() as u64;
    assert_eq!(stats.requests_failed, expected_4xx);
    assert!(stats.malformed > 0 && stats.malformed <= expected_4xx);
    net.shutdown().unwrap();
    control.shutdown().unwrap();
}

/// Reject-newest overload shedding: a burst far past the queue
/// watermark gets a mix of `200`s and `429 Retry-After`s — nothing
/// hangs, nothing crashes, every admitted answer is complete and
/// version-tagged, and the queue depth never exceeded the watermark.
#[test]
fn overload_burst_sheds_with_429_and_bounded_queue_depth() {
    let serve_opts = ServeOptions {
        batch_window: Duration::from_millis(10),
        ..ServeOptions::default()
    };
    let net_opts = NetOptions {
        workers: 2,
        queue_capacity: 4,
        ..NetOptions::default()
    };
    let net = net_server_with(serve_opts, net_opts);
    let addr = net.local_addr();
    let expect = net.serve_handle().resistances(&[(0, 1)]).unwrap().value;

    let clients = 48usize;
    let barrier = Arc::new(Barrier::new(clients));
    let mut threads = Vec::new();
    for _ in 0..clients {
        let barrier = Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || {
            barrier.wait();
            client::post(addr, "/resistances", "{\"pairs\":[[0,1]]}")
        }));
    }
    let mut ok = 0u64;
    let mut shed = 0u64;
    for t in threads {
        let reply = t.join().unwrap().expect("every client gets an answer");
        match reply.status {
            200 => {
                ok += 1;
                let parsed = reply.json().unwrap();
                assert!(parsed.get("version").is_some(), "untagged answer");
                let got: Vec<f64> = parsed
                    .get("resistances")
                    .and_then(|v| v.as_array())
                    .unwrap()
                    .iter()
                    .map(|x| x.as_f64().unwrap())
                    .collect();
                assert_eq!(got, expect, "admitted answer diverged under overload");
            }
            429 => {
                shed += 1;
                assert!(
                    reply.header("retry-after").is_some(),
                    "shed without Retry-After hint"
                );
            }
            other => panic!("unexpected status {other} under overload"),
        }
    }
    assert_eq!(ok + shed, clients as u64);
    assert!(ok > 0, "some requests must be admitted");
    assert!(shed > 0, "a 12x-capacity burst must shed");
    let stats = net.stats();
    assert_eq!(stats.shed, shed);
    assert!(
        stats.max_queue_depth <= 4,
        "queue depth {} exceeded the watermark",
        stats.max_queue_depth
    );
    net.shutdown().unwrap();
}

/// The per-peer token bucket: with no refill, exactly `burst` requests
/// pass and the rest shed with `429`.
#[test]
fn rate_limiter_sheds_past_the_per_peer_burst() {
    let net = net_server(NetOptions {
        rate_limit: Some(RateLimit {
            burst: 3,
            per_second: 0.0,
        }),
        ..NetOptions::default()
    });
    let addr = net.local_addr();
    let statuses: Vec<u16> = (0..6)
        .map(|_| client::get(addr, "/healthz").unwrap().status)
        .collect();
    assert_eq!(statuses, vec![200, 200, 200, 429, 429, 429]);
    let stats = net.stats();
    assert_eq!(stats.rate_limited, 3);
    net.shutdown().unwrap();
}

/// The ingest circuit breaker: repeated quarantined batches trip it
/// open (`503` with `Retry-After`), queries keep serving throughout,
/// and after the cooldown a clean probe closes it again.
#[test]
fn breaker_trips_on_quarantined_ingests_and_recovers() {
    let net = net_server(NetOptions {
        breaker_trip_after: 2,
        breaker_cooldown: Duration::from_millis(200),
        ..NetOptions::default()
    });
    let addr = net.local_addr();
    let truth = sgl_datasets::grid2d(6, 6);
    let wrong = sgl_datasets::grid2d(7, 7); // 49 nodes vs the served 36

    // Two node-count-mismatched batches are quarantined synchronously.
    for seed in 0..2 {
        let bad = Measurements::generate(&wrong, 2, 90 + seed).unwrap();
        let reply = client::post(addr, "/ingest", &ingest_body(&bad)).unwrap();
        assert_eq!(reply.status, 400, "quarantined batch should 400");
    }
    assert_eq!(net.serve_stats().batches_quarantined, 2);

    // The next ingest — a perfectly good one — finds the breaker open.
    let good = Measurements::generate(&truth, 2, 80).unwrap();
    let reply = client::post(addr, "/ingest", &ingest_body(&good)).unwrap();
    assert_eq!(reply.status, 503, "open breaker should refuse ingest");
    assert!(reply.header("retry-after").is_some());
    assert_eq!(net.stats().breaker_trips, 1);
    assert_eq!(net.stats().breaker_rejected, 1);

    // Degraded, not down: queries still serve while ingest is refused.
    assert_eq!(client::get(addr, "/healthz").unwrap().status, 200);
    let q = client::post(addr, "/resistances", "{\"pairs\":[[0,1]]}").unwrap();
    assert_eq!(q.status, 200);
    let stats_reply = client::get(addr, "/stats").unwrap();
    assert_eq!(
        stats_reply
            .json()
            .unwrap()
            .get("net")
            .and_then(|n| n.get("breaker_state"))
            .and_then(|s| s.as_str().map(String::from)),
        Some("open".to_string())
    );

    // After the cooldown the half-open probe is admitted, succeeds,
    // and closes the breaker; ingest flows again.
    std::thread::sleep(Duration::from_millis(250));
    let reply = client::post(addr, "/ingest", &ingest_body(&good)).unwrap();
    assert_eq!(reply.status, 202, "clean probe should be admitted");
    let reply = client::post(addr, "/flush", "").unwrap();
    assert_eq!(reply.status, 200);
    let another = Measurements::generate(&truth, 2, 81).unwrap();
    assert_eq!(
        client::post(addr, "/ingest", &ingest_body(&another))
            .unwrap()
            .status,
        202
    );
    assert_eq!(net.stats().breaker_trips, 1, "no re-trip after recovery");

    let session = net.shutdown().unwrap();
    // Both good batches were absorbed: 8 initial + 2 + 2 columns.
    assert_eq!(session.measurements().num_measurements(), 12);
}

/// Anti-slowloris: a client trickling a request gets cut off with
/// `408` once the connection's total read budget expires — the worker
/// is never held past the deadline.
#[test]
fn slowloris_is_cut_off_at_the_read_deadline() {
    let net = net_server(NetOptions {
        read_deadline: Duration::from_millis(200),
        ..NetOptions::default()
    });
    let addr = net.local_addr();
    let started = Instant::now();
    let mut stream = client::connect(addr).unwrap();
    use std::io::Write;
    stream.write_all(b"GET /heal").unwrap();
    std::thread::sleep(Duration::from_millis(400));
    let reply = client::read_reply(&mut stream).unwrap();
    assert_eq!(reply.status, 408, "stalled request should time out");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "slowloris must not hold the connection open"
    );
    // The server is unharmed.
    assert_eq!(client::get(addr, "/healthz").unwrap().status, 200);
    net.shutdown().unwrap();
}

/// Half-open connections and mid-request disconnects: clients that
/// vanish — before sending anything or mid-request — leave no mark on
/// the server beyond a counter.
#[test]
fn disconnecting_clients_leave_the_server_serving() {
    let net = net_server(NetOptions {
        read_deadline: Duration::from_millis(300),
        ..NetOptions::default()
    });
    let addr = net.local_addr();
    for i in 0..20 {
        // Half-open: connect and vanish.
        let s = TcpStream::connect(addr).unwrap();
        drop(s);
        // Mid-request: send half a request and vanish.
        let mut s = TcpStream::connect(addr).unwrap();
        use std::io::Write;
        let _ = s.write_all(format!("POST /resistances HTTP/1.1\r\nx-try: {i}\r\ncon").as_bytes());
        drop(s);
    }
    // Well-formed traffic still gets full service.
    let reply = client::post(addr, "/resistances", "{\"pairs\":[[2,9]]}").unwrap();
    assert_eq!(reply.status, 200);
    let serve = net.serve_stats();
    assert_eq!(serve.writer_restarts, 0);
    assert_eq!(serve.version, 0);
    net.shutdown().unwrap();
}

/// Client deadlines propagate: `x-sgl-deadline-ms` flows through the
/// worker into the micro-batcher, and an expired wait comes back as
/// `504 Gateway Timeout` while patient requests still succeed.
#[test]
fn client_deadline_propagates_into_the_micro_batcher() {
    let serve_opts = ServeOptions {
        batch_window: Duration::from_millis(300),
        ..ServeOptions::default()
    };
    let net = net_server_with(serve_opts, NetOptions::default());
    let addr = net.local_addr();

    // The leader opens a 300 ms collection window; the impatient
    // follower joins it with a 5 ms budget and must get a 504 long
    // before the window closes.
    let leader =
        std::thread::spawn(move || client::post(addr, "/resistances", "{\"pairs\":[[0,1]]}"));
    std::thread::sleep(Duration::from_millis(50));
    let started = Instant::now();
    let reply = client::post_with_headers(
        addr,
        "/resistances",
        &[("x-sgl-deadline-ms", "5")],
        "{\"pairs\":[[2,3]]}",
    )
    .unwrap();
    assert_eq!(reply.status, 504, "expired deadline should map to 504");
    assert!(
        started.elapsed() < Duration::from_millis(200),
        "the 504 must arrive well before the batch window closes"
    );
    let leader_reply = leader.join().unwrap().unwrap();
    assert_eq!(
        leader_reply.status, 200,
        "the patient leader still succeeds"
    );
    assert_eq!(net.serve_stats().deadline_misses, 1);

    // A generous deadline sails through.
    let reply = client::post_with_headers(
        addr,
        "/resistances",
        &[("x-sgl-deadline-ms", "5000")],
        "{\"pairs\":[[0,1]]}",
    )
    .unwrap();
    assert_eq!(reply.status, 200);
    net.shutdown().unwrap();
}

/// Ingest backpressure over the wire: past the writer-queue watermark,
/// `POST /ingest` answers `429` with `Retry-After`, and the handed-back
/// session owns exactly the columns of the `202`-accepted batches.
#[test]
fn ingest_backpressure_surfaces_as_429_with_exact_accounting() {
    let serve_opts = ServeOptions {
        max_pending_batches: 1,
        refresh_iters: 6,
        ..ServeOptions::default()
    };
    let net = net_server_with(serve_opts, NetOptions::default());
    let addr = net.local_addr();
    let truth = sgl_datasets::grid2d(6, 6);

    let clients = 8usize;
    let barrier = Arc::new(Barrier::new(clients));
    let mut threads = Vec::new();
    for i in 0..clients {
        let barrier = Arc::clone(&barrier);
        let body = ingest_body(&Measurements::generate(&truth, 2, 200 + i as u64).unwrap());
        threads.push(std::thread::spawn(move || {
            barrier.wait();
            let mut statuses = Vec::new();
            for _ in 0..2 {
                statuses.push(client::post(addr, "/ingest", &body).unwrap());
            }
            statuses
        }));
    }
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for t in threads {
        for reply in t.join().unwrap() {
            match reply.status {
                202 => accepted += 1,
                429 => {
                    rejected += 1;
                    assert!(reply.header("retry-after").is_some());
                }
                other => panic!("unexpected ingest status {other}: {}", reply.text()),
            }
        }
    }
    assert_eq!(accepted + rejected, 16);
    assert!(accepted > 0, "a 1-deep watermark still admits work");
    let serve = net.serve_stats();
    assert_eq!(serve.batches_rejected, rejected, "shed ledger must balance");

    let session = net.shutdown().unwrap();
    assert_eq!(
        session.measurements().num_measurements() as u64,
        8 + 2 * accepted,
        "handed-back session must own exactly the accepted columns"
    );
}

/// Deterministic drain: shutdown stops accepting, answers everything
/// admitted, absorbs every queued batch, and hands back a session that
/// owns all accepted columns; the port then refuses new connections.
#[test]
fn graceful_shutdown_drains_and_hands_back_the_session() {
    let net = net_server(NetOptions::default());
    let addr = net.local_addr();
    let truth = sgl_datasets::grid2d(6, 6);
    for seed in 0..3 {
        let batch = Measurements::generate(&truth, 2, 60 + seed).unwrap();
        let reply = client::post(addr, "/ingest", &ingest_body(&batch)).unwrap();
        assert_eq!(reply.status, 202);
    }
    // No flush: the drain itself must absorb all three queued batches.
    let session = net.shutdown().unwrap();
    assert_eq!(session.measurements().num_measurements(), 8 + 3 * 2);
    // The listener is gone: new connections are refused.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "the drained listener must refuse new connections"
    );
}
