//! Cross-crate consistency: all Laplacian solver backends and both
//! eigensolver families must agree with each other and with dense
//! reference computations.

use sgl_core::{smallest_nonzero_eigenvalues, SpectrumMethod};
use sgl_graph::laplacian::laplacian_csr;
use sgl_graph::Graph;
use sgl_linalg::{vecops, Rng, SymEig};
use sgl_solver::{LaplacianSolver, SolverMethod, SolverOptions};

fn mean_zero_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = rng.normal_vec(n);
    vecops::project_out_mean(&mut b);
    b
}

#[test]
fn all_solver_backends_agree_on_meshes_and_circuits() {
    let cases = [
        sgl_datasets::grid2d(9, 9),
        sgl_datasets::circuit_grid(9, 9, 1.7, 1),
        sgl_datasets::fe_plate_mesh(250, 2).graph,
    ];
    for (ci, g) in cases.iter().enumerate() {
        let b = mean_zero_rhs(g.num_nodes(), ci as u64);
        let mut solutions = Vec::new();
        for m in [
            SolverMethod::TreePcg,
            SolverMethod::AmgPcg,
            SolverMethod::JacobiPcg,
        ] {
            let s = LaplacianSolver::new(
                g,
                SolverOptions {
                    method: m,
                    ..SolverOptions::default()
                },
            )
            .unwrap();
            solutions.push(s.solve(&b).unwrap());
        }
        for w in solutions.windows(2) {
            let d = vecops::sub(&w[0], &w[1]);
            assert!(
                vecops::norm2(&d) / vecops::norm2(&w[0]) < 1e-6,
                "case {ci}: backends disagree"
            );
        }
    }
}

#[test]
fn solver_matches_dense_pseudoinverse() {
    let g = sgl_datasets::grid2d(6, 6);
    let n = g.num_nodes();
    let b = mean_zero_rhs(n, 7);
    let solver = LaplacianSolver::new(&g, SolverOptions::default()).unwrap();
    let x = solver.solve(&b).unwrap();
    // Dense reference via eigendecomposition pseudoinverse.
    let eig = SymEig::compute(&laplacian_csr(&g).to_dense()).unwrap();
    let mut x_ref = vec![0.0; n];
    for k in 1..n {
        let v = eig.vectors.column(k);
        let c = vecops::dot(&v, &b) / eig.values[k];
        vecops::axpy(c, &v, &mut x_ref);
    }
    let d = vecops::sub(&x, &x_ref);
    assert!(
        vecops::norm2(&d) < 1e-7,
        "dense mismatch {}",
        vecops::norm2(&d)
    );
}

#[test]
fn eigenvalue_methods_agree_with_dense() {
    let g = sgl_datasets::circuit_grid(8, 8, 1.7, 3);
    let dense = SymEig::compute(&laplacian_csr(&g).to_dense()).unwrap();
    let a = smallest_nonzero_eigenvalues(&g, 6, SpectrumMethod::Direct).unwrap();
    let b = smallest_nonzero_eigenvalues(&g, 6, SpectrumMethod::ShiftInvert).unwrap();
    for k in 0..6 {
        assert!(
            (a[k] - dense.values[k + 1]).abs() < 1e-6 * dense.values[k + 1].max(1.0),
            "direct eig {k}"
        );
        assert!(
            (b[k] - dense.values[k + 1]).abs() < 1e-6 * dense.values[k + 1].max(1.0),
            "shift-invert eig {k}"
        );
    }
}

#[test]
fn weighted_graphs_are_handled() {
    // Heavily heterogeneous weights (6 decades) must not break any backend.
    let mut g = Graph::new(30);
    let mut rng = Rng::seed_from_u64(5);
    for i in 0..29 {
        g.add_edge(i, i + 1, 10f64.powf(rng.uniform_in(-3.0, 3.0)));
    }
    for _ in 0..15 {
        let u = rng.below(30);
        let v = rng.below(30);
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v, 10f64.powf(rng.uniform_in(-3.0, 3.0)));
        }
    }
    let b = mean_zero_rhs(30, 6);
    let l = laplacian_csr(&g);
    for m in [SolverMethod::TreePcg, SolverMethod::AmgPcg] {
        let s = LaplacianSolver::new(
            &g,
            SolverOptions {
                method: m,
                ..SolverOptions::default()
            },
        )
        .unwrap();
        let x = s.solve(&b).unwrap();
        let lx = l.matvec(&x);
        let mut r = vecops::sub(&b, &lx);
        vecops::project_out_mean(&mut r);
        assert!(
            vecops::norm2(&r) / vecops::norm2(&b) < 1e-7,
            "{m:?} residual too large"
        );
    }
}
