//! Sample-complexity claims of §II.D: the Johnson–Lindenstrauss
//! measurement construction preserves every effective resistance within
//! `(1 ± ε)`, and the learned graphs preserve effective-resistance
//! structure (Fig. 7).

use sgl::prelude::*;
use sgl_core::{pairwise_effective_resistances, sample_node_pairs, ResistanceSketch};
use sgl_linalg::vecops;

#[test]
fn jl_measurements_preserve_effective_resistances() {
    // Eq. 18 at ε = 0.5 on a small mesh: M = ⌈24 ln N / ε²⌉ random
    // projections must sandwich every sampled pair's resistance.
    let truth = sgl_datasets::grid2d(8, 8);
    let n = truth.num_nodes();
    let eps = 0.5;
    let m = Measurements::jl_sample_count(n, eps);
    let meas = Measurements::generate_jl(&truth, m, 1).unwrap();

    let pairs = sample_node_pairs(n, 40, 2);
    let exact = pairwise_effective_resistances(&truth, &pairs).unwrap();
    for (k, &(s, t)) in pairs.iter().enumerate() {
        let est = meas.data_distance_sq(s, t);
        let lo = (1.0 - eps) * exact[k];
        let hi = (1.0 + eps) * exact[k];
        assert!(
            est >= lo && est <= hi,
            "pair ({s},{t}): estimate {est} outside [{lo}, {hi}]"
        );
    }
}

#[test]
fn jl_estimate_tightens_with_more_samples() {
    let truth = sgl_datasets::grid2d(7, 7);
    let pairs = sample_node_pairs(49, 30, 3);
    let exact = pairwise_effective_resistances(&truth, &pairs).unwrap();
    let mut errors = Vec::new();
    for m in [20usize, 200, 2000] {
        let meas = Measurements::generate_jl(&truth, m, 4).unwrap();
        let err: f64 = pairs
            .iter()
            .enumerate()
            .map(|(k, &(s, t))| (meas.data_distance_sq(s, t) - exact[k]).abs() / exact[k])
            .sum::<f64>()
            / pairs.len() as f64;
        errors.push(err);
    }
    assert!(
        errors[2] < errors[0],
        "error should shrink with samples: {errors:?}"
    );
    assert!(
        errors[2] < 0.1,
        "2000 samples should be accurate: {errors:?}"
    );
}

#[test]
fn resistance_sketch_matches_exact_batch() {
    let truth = sgl_datasets::circuit_grid(12, 12, 1.7, 5);
    let pairs = sample_node_pairs(truth.num_nodes(), 25, 6);
    let exact = pairwise_effective_resistances(&truth, &pairs).unwrap();
    let sketch = ResistanceSketch::build(&truth, 800, 7).unwrap();
    let est: Vec<f64> = pairs
        .iter()
        .map(|&(s, t)| sketch.estimate(s, t).unwrap())
        .collect();
    assert!(
        vecops::pearson(&exact, &est) > 0.98,
        "sketch correlation too low"
    );
}

#[test]
fn learned_graph_preserves_effective_resistances() {
    // The Fig. 7 claim in miniature: resistances on the learned graph
    // correlate strongly with the original's.
    let truth = sgl_datasets::grid2d(13, 13);
    let meas = Measurements::generate(&truth, 40, 8).unwrap();
    let result = Sgl::new(SglConfig::default().with_tol(1e-8).with_max_iterations(120))
        .learn(&meas)
        .unwrap();
    let pairs = sample_node_pairs(truth.num_nodes(), 60, 9);
    let r_true = pairwise_effective_resistances(&truth, &pairs).unwrap();
    let r_learned = pairwise_effective_resistances(&result.graph, &pairs).unwrap();
    let corr = vecops::pearson(&r_true, &r_learned);
    assert!(corr > 0.85, "ER correlation {corr}");
}

#[test]
fn gaussian_measurement_distances_track_resistances() {
    // Even the plain Gaussian measurement protocol (§III.A) produces
    // row distances correlated with effective resistance — the property
    // the kNN weighting (eq. 15) relies on.
    let truth = sgl_datasets::grid2d(9, 9);
    let meas = Measurements::generate(&truth, 200, 10).unwrap();
    let pairs = sample_node_pairs(81, 40, 11);
    let exact = pairwise_effective_resistances(&truth, &pairs).unwrap();
    let dists: Vec<f64> = pairs
        .iter()
        .map(|&(s, t)| meas.data_distance_sq(s, t))
        .collect();
    assert!(
        vecops::pearson(&exact, &dists) > 0.9,
        "distance/resistance correlation too low"
    );
}
