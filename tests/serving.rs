//! Cross-crate contract of the serving layer: every response a reader
//! receives is internally consistent with exactly one published
//! snapshot — never a torn mix of pre- and post-publish state — and a
//! fixed snapshot answers bit-identically no matter how many reader
//! threads or ambient workers are involved.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sgl::prelude::*;
use sgl_core::sample_node_pairs;
use sgl_linalg::{par, DenseMatrix};

/// An under-fitted session over the first `initial` of `m` measurement
/// columns, plus the full measurement set for streaming the rest.
fn session_and_columns(
    side: usize,
    m: usize,
    initial: usize,
) -> (SglSession<'static>, Measurements) {
    let truth = sgl_datasets::grid2d(side, side);
    let all = Measurements::generate(&truth, m, 7).unwrap();
    let cfg = SglConfig::builder()
        .k(4)
        .r(4)
        .tol(0.0)
        .max_iterations(4)
        .build()
        .unwrap();
    let first = column_batch(&all, 0, initial);
    let mut session = SglSession::from_owned(cfg, first).unwrap();
    session.run_to_completion().unwrap();
    (session, all)
}

fn column_batch(all: &Measurements, lo: usize, hi: usize) -> Measurements {
    let cols: Vec<Vec<f64>> = (lo..hi).map(|j| all.voltages().column(j)).collect();
    Measurements::from_voltages(DenseMatrix::from_columns(&cols)).unwrap()
}

/// The no-torn-reads contract under writer churn: readers hammer mixed
/// queries while the writer ingests and republishes; afterwards every
/// recorded response must bit-match the canonical answers of exactly
/// the snapshot version that served it.
#[test]
fn responses_consistent_with_exactly_one_snapshot_during_publishes() {
    let (session, all) = session_and_columns(8, 16, 10);
    let n = 64usize;
    let server = SglServer::new(session, ServeOptions::default()).unwrap();
    let reader = server.handle();

    let pairs: Vec<Vec<(usize, usize)>> = (0..8)
        .map(|i| sample_node_pairs(n, 4, 0xBEEF + i as u64))
        .collect();
    let injection = |i: usize| {
        let mut b = vec![0.0; n];
        b[i % n] = 1.0;
        b[(i * 13 + 5) % n] = -1.0;
        b
    };

    // Canonical answers per version, captured from pinned snapshots.
    let canon = |snap: &GraphSnapshot| -> (Vec<Vec<f64>>, Vec<Vec<f64>>, Vec<usize>) {
        let res = pairs.iter().map(|p| snap.resistances(p).unwrap()).collect();
        let interp = (0..4)
            .map(|i| snap.interpolate(&injection(i)).unwrap())
            .collect();
        let labels = (0..n).map(|v| snap.cluster_of(v).unwrap()).collect();
        (res, interp, labels)
    };
    let mut canonical = vec![canon(&reader.snapshot())];

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for r in 0..3usize {
        let handle = server.handle();
        let stop = Arc::clone(&stop);
        let pairs = pairs.clone();
        readers.push(std::thread::spawn(move || {
            // (kind, index, version, payload) records for post-hoc check.
            let mut res = Vec::new();
            let mut interp = Vec::new();
            let mut clusters = Vec::new();
            let mut q = r;
            while !stop.load(Ordering::Relaxed) {
                let set = q % pairs.len();
                let resp = handle.resistances(&pairs[set]).unwrap();
                res.push((set, resp.version, resp.value));
                let i = q % 4;
                let mut b = vec![0.0; 64];
                b[i % 64] = 1.0;
                b[(i * 13 + 5) % 64] = -1.0;
                let resp = handle.interpolate(&b).unwrap();
                interp.push((i, resp.version, resp.value));
                let v = q % 64;
                let resp = handle.cluster_of(v).unwrap();
                clusters.push((v, resp.version, resp.value));
                q += 1;
            }
            (res, interp, clusters)
        }));
    }

    // Stream the remaining columns in two batches, capturing canonical
    // answers for each published version as it appears.
    for (lo, hi) in [(10usize, 13usize), (13, 16)] {
        server.ingest(column_batch(&all, lo, hi)).unwrap();
        server.flush().unwrap();
        let snap = reader.snapshot();
        assert_eq!(snap.version() as usize, canonical.len());
        canonical.push(canon(&snap));
    }
    // Let the readers observe the final version before stopping.
    let final_resp = reader.resistances(&pairs[0]).unwrap();
    assert_eq!(final_resp.version, 2);
    stop.store(true, Ordering::Relaxed);

    let mut versions_seen = std::collections::BTreeSet::new();
    versions_seen.insert(final_resp.version);
    assert_eq!(final_resp.value, canonical[2].0[0]);
    for t in readers {
        let (res, interp, clusters) = t.join().unwrap();
        for (set, version, values) in res {
            versions_seen.insert(version);
            assert_eq!(
                values, canonical[version as usize].0[set],
                "torn resistance read on version {version}"
            );
        }
        for (i, version, values) in interp {
            assert_eq!(
                values, canonical[version as usize].1[i],
                "torn interpolation read on version {version}"
            );
        }
        for (v, version, label) in clusters {
            assert_eq!(
                label, canonical[version as usize].2[v],
                "torn cluster read on version {version}"
            );
        }
    }
    // The workload genuinely spanned a publish (v0 before the first
    // ingest is pinned above; v2 is asserted after the last flush).
    assert!(versions_seen.contains(&2));
    assert!(versions_seen.len() >= 2, "saw {versions_seen:?}");

    let session = server.shutdown().unwrap();
    assert_eq!(session.measurements().num_measurements(), 16);
}

/// A fixed snapshot is a pure function of its version: answers are
/// bit-identical across reader counts and ambient worker counts (the
/// serving extension of the `parallel_equivalence` contract).
#[test]
fn fixed_snapshot_bit_identical_across_reader_and_thread_counts() {
    let (session, _) = session_and_columns(8, 12, 12);
    let server = SglServer::new(session, ServeOptions::default()).unwrap();
    let reader = server.handle();
    let pairs = sample_node_pairs(64, 12, 0x5EED);

    // Canonical: straight off the pinned snapshot, single-threaded.
    let snap = reader.snapshot();
    let canonical = par::with_threads(1, || snap.resistances(&pairs).unwrap());

    // Ambient worker count must not change a snapshot answer.
    for threads in [2usize, 4] {
        let answers = par::with_threads(threads, || snap.resistances(&pairs).unwrap());
        assert_eq!(answers, canonical, "ambient threads = {threads}");
    }

    // Concurrent readers through the micro-batcher (any coalescing mix)
    // must reproduce the same bits.
    for readers in [1usize, 2, 4] {
        let mut threads = Vec::new();
        for _ in 0..readers {
            let handle = server.handle();
            let pairs = pairs.clone();
            threads.push(std::thread::spawn(move || {
                (0..5)
                    .map(|_| handle.resistances(&pairs).unwrap())
                    .collect::<Vec<_>>()
            }));
        }
        for t in threads {
            for resp in t.join().unwrap() {
                assert_eq!(resp.version, 0);
                assert_eq!(resp.value, canonical, "readers = {readers}");
            }
        }
    }
}

/// Micro-batched interpolation answers equal the direct snapshot solve
/// (coalescing never changes a solution), and per-request validation
/// errors stay individual — a bad request in a batch cannot poison its
/// neighbors.
#[test]
fn micro_batching_preserves_answers_and_isolates_bad_requests() {
    let (session, _) = session_and_columns(6, 10, 10);
    let n = 36usize;
    let server = SglServer::new(session, ServeOptions::default()).unwrap();
    let snap = server.handle().snapshot();

    let injection = |i: usize| {
        let mut b = vec![0.0; n];
        b[i] = 1.0;
        b[n - 1 - i] = -1.0;
        b
    };
    let direct: Vec<Vec<f64>> = (0..4)
        .map(|i| snap.interpolate(&injection(i)).unwrap())
        .collect();

    let mut threads = Vec::new();
    for i in 0..4usize {
        let handle = server.handle();
        let b = injection(i);
        threads.push(std::thread::spawn(move || {
            (i, handle.interpolate(&b).unwrap())
        }));
    }
    // A concurrent malformed request (wrong width) must fail alone.
    let bad_handle = server.handle();
    let bad = std::thread::spawn(move || bad_handle.interpolate(&[1.0, -1.0]));
    for t in threads {
        let (i, resp) = t.join().unwrap();
        assert_eq!(
            resp.value, direct[i],
            "coalesced interpolation changed bits"
        );
    }
    assert!(matches!(bad.join().unwrap(), Err(ServeError::BadQuery(_))));

    // Same isolation on the resistance path.
    let good = server.handle().resistances(&[(0, 35)]).unwrap();
    assert!(matches!(
        server.handle().resistances(&[(0, 0)]),
        Err(ServeError::BadQuery(_))
    ));
    assert_eq!(good.value, snap.resistances(&[(0, 35)]).unwrap());
}
