//! Cross-crate resilience contract: injected faults are recovered, not
//! fatal — and recovery never silently changes what is learned. A
//! faulted run converges to the same graph as a fault-free run (same
//! edge set, weights within 1e-6), faulted runs stay bit-identical
//! across thread counts (fault opportunities tick on the serial control
//! path), a killed writer restarts without torn reads, a checkpointed
//! session resumes bit-identically, and a quarantined ingest batch
//! never perturbs the session.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sgl::prelude::*;
use sgl_linalg::DenseMatrix;

/// The targeted solver-fault schedule used across these tests: one
/// preconditioner breakdown at the first build, one PCG stagnation, one
/// Woodbury capacitance singularity — every solver-side recovery rung.
fn solver_faults() -> Arc<FaultPlan> {
    Arc::new(
        FaultPlan::new()
            .with_fault(FaultKind::IcholBreakdown, 0)
            .with_fault(FaultKind::PcgStagnation, 0)
            .with_fault(FaultKind::WoodburySingular, 0),
    )
}

/// A config whose embedding deterministically stalls LOBPCG (tight
/// tolerance, tiny iteration budget) so every step goes through the
/// shift-invert solver path — the in-loop solver traffic the fault
/// schedule needs opportunities on.
fn solver_heavy_config(parallelism: usize) -> SglConfig {
    SglConfig::builder()
        .tol(1e-6)
        .max_iterations(80)
        .eig_tol(1e-12)
        .eig_max_iter(2)
        .parallelism(parallelism)
        .build()
        .unwrap()
}

fn learn(parallelism: usize, faults: Option<Arc<FaultPlan>>) -> LearnResult {
    let truth = sgl_datasets::grid2d(9, 9);
    let meas = Measurements::generate(&truth, 20, 5).unwrap();
    let mut session = SglSession::from_owned(solver_heavy_config(parallelism), meas).unwrap();
    if let Some(plan) = faults {
        session.set_fault_plan(plan);
    }
    session.run_to_completion().unwrap();
    session.finish().unwrap()
}

fn assert_same_topology(a: &Graph, b: &Graph, what: &str) {
    let key = |g: &Graph| {
        let mut edges: Vec<(usize, usize)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
        edges.sort_unstable();
        edges
    };
    assert_eq!(key(a), key(b), "{what}: edge sets differ");
}

/// The headline recovery contract: a run with injected solver faults
/// completes, converges, and learns the same graph as the fault-free
/// run — identical edge set, weights within 1e-6 (recovery may land on
/// a downgraded preconditioner, so low bits may differ; the learned
/// model must not).
#[test]
fn faulted_run_recovers_to_the_fault_free_graph() {
    let clean = learn(1, None);
    let plan = solver_faults();
    let faulted = learn(1, Some(Arc::clone(&plan)));

    // The schedule actually fired and the recovery machinery engaged.
    assert!(
        plan.injected_count() >= 2,
        "faults fired: {:?}",
        plan.injected()
    );
    assert!(
        faulted.revision_stats.precond_downgrades >= 1,
        "breakdown did not walk the downgrade ladder: {:?}",
        faulted.revision_stats
    );

    assert!(clean.converged && faulted.converged);
    assert_same_topology(&clean.graph, &faulted.graph, "faulted vs fault-free");
    for (ec, ef) in clean.graph.edges().iter().zip(faulted.graph.edges()) {
        let drift = (ec.weight - ef.weight).abs() / ec.weight.abs().max(1.0);
        assert!(
            drift <= 1e-6,
            "edge ({},{}) drifted {drift:.3e} under faults",
            ec.u,
            ec.v
        );
    }
}

/// Fault opportunities advance on the serial control path, so the same
/// schedule fires at the same logical instant at any thread count — a
/// faulted run is bit-identical at 1 vs N workers.
#[test]
fn faulted_runs_bit_identical_across_thread_counts() {
    let serial = learn(1, Some(solver_faults()));
    for threads in [2usize, 4] {
        let parallel = learn(threads, Some(solver_faults()));
        assert_same_topology(
            &serial.graph,
            &parallel.graph,
            "1 vs N threads under faults",
        );
        for (ea, eb) in serial.graph.edges().iter().zip(parallel.graph.edges()) {
            assert_eq!(
                ea.weight.to_bits(),
                eb.weight.to_bits(),
                "threads={threads}: faulted weights must be bit-identical"
            );
        }
        assert_eq!(serial.trace, parallel.trace, "threads={threads}");
        assert_eq!(serial.scale_factor, parallel.scale_factor);
    }
}

/// After repeated solver failures the session swaps Solver → SolverFree
/// (when the sgl-sfsgl factory is registered) instead of dying; the
/// fallback is recorded in the result.
#[test]
fn repeated_solver_failures_fall_back_to_solver_free() {
    sgl_sfsgl::register();
    // Stagnate every PCG solve: the fresh-factorization retry fails
    // too, forcing the strategy fallback rung.
    let mut plan = FaultPlan::new();
    for nth in 0..256 {
        plan = plan.with_fault(FaultKind::PcgStagnation, nth);
    }
    let truth = sgl_datasets::grid2d(8, 8);
    let meas = Measurements::generate(&truth, 18, 9).unwrap();
    let mut session = SglSession::from_owned(solver_heavy_config(0), meas).unwrap();
    session.set_fault_plan(Arc::new(plan));
    session.run_to_completion().unwrap();
    assert!(session.fallbacks_taken() >= 1);
    let result = session.finish().unwrap();
    assert!(result.fallbacks_taken >= 1);
    assert!(result.graph.num_edges() >= 63); // spanning tree + densification
}

/// Killing the writer mid-publish (injected panic inside the ingest
/// path) leaves every reader consistent: queries keep answering from
/// the last published snapshot during the restart, and the rebuilt
/// writer republishes the batch afterwards.
#[test]
fn killed_writer_restarts_without_torn_reads() {
    let truth = sgl_datasets::grid2d(6, 6);
    let meas = Measurements::generate(&truth, 12, 3).unwrap();
    let cfg = SglConfig::builder()
        .k(4)
        .r(4)
        .tol(0.0)
        .max_iterations(3)
        .build()
        .unwrap();
    let mut session = SglSession::from_owned(cfg, meas).unwrap();
    session.run_to_completion().unwrap();
    let plan = Arc::new(FaultPlan::new().with_fault(FaultKind::WriterPanic, 0));
    let opts = ServeOptions {
        fault_plan: Some(Arc::clone(&plan)),
        ..ServeOptions::default()
    };
    let server = SglServer::new(session, opts).unwrap();

    // Canonical answers per version, captured from pinned snapshots.
    let reader = server.handle();
    let pairs = [(0usize, 35usize), (5, 30), (12, 17)];
    let canon_v0 = reader.snapshot().resistances(&pairs).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..3 {
        let handle = server.handle();
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut seen = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let resp = handle.resistances(&pairs).unwrap();
                seen.push((resp.version, resp.value));
            }
            seen
        }));
    }

    // This ingest trips the injected panic; the supervisor rebuilds the
    // writer and re-absorbs the batch.
    server
        .ingest(Measurements::generate(&truth, 5, 8).unwrap())
        .unwrap();
    server.flush().unwrap();
    let canon_v1 = reader.snapshot().resistances(&pairs).unwrap();
    stop.store(true, Ordering::Relaxed);

    let stats = server.stats();
    assert_eq!(stats.writer_restarts, 1);
    assert_eq!(stats.batches_quarantined, 0);
    assert!(reader.version() >= 1);
    for t in readers {
        for (version, value) in t.join().unwrap() {
            let expected = if version == 0 { &canon_v0 } else { &canon_v1 };
            assert_eq!(&value, expected, "torn read on version {version}");
        }
    }

    // The restarted writer lost nothing: all 17 columns survive handoff.
    let session = server.shutdown().unwrap();
    assert_eq!(session.measurements().num_measurements(), 17);
}

/// A quarantined ingest batch is isolated: it is counted, rejected, and
/// the session, the served snapshot, and later ingests are exactly what
/// they would have been had the bad batch never arrived.
#[test]
fn quarantined_batch_does_not_perturb_the_session() {
    let truth = sgl_datasets::grid2d(5, 5);
    let build = || {
        let meas = Measurements::generate(&truth, 10, 3).unwrap();
        let cfg = SglConfig::builder()
            .k(4)
            .r(4)
            .tol(0.0)
            .max_iterations(3)
            .build()
            .unwrap();
        let mut session = SglSession::from_owned(cfg, meas).unwrap();
        session.run_to_completion().unwrap();
        SglServer::new(session, ServeOptions::default()).unwrap()
    };
    let good_batch = Measurements::generate(&truth, 4, 11).unwrap();

    // Control: good batch only.
    let control = build();
    control.ingest(good_batch.clone()).unwrap();
    control.flush().unwrap();
    let control_answer = control.handle().resistances(&[(0, 24)]).unwrap();

    // Treatment: a mismatched batch sandwiched before the good one.
    let treated = build();
    let wrong = Measurements::generate(&sgl_datasets::grid2d(3, 3), 3, 1).unwrap();
    assert!(matches!(
        treated.ingest(wrong),
        Err(ServeError::BadQuery(_))
    ));
    treated.ingest(good_batch).unwrap();
    treated.flush().unwrap();
    let treated_answer = treated.handle().resistances(&[(0, 24)]).unwrap();

    assert_eq!(treated.stats().batches_quarantined, 1);
    assert_eq!(control.stats().batches_quarantined, 0);
    // Bit-identical serving state: the bad batch left no trace.
    assert_eq!(treated_answer.value, control_answer.value);
    assert_eq!(treated_answer.version, control_answer.version);
    let a = control.shutdown().unwrap();
    let b = treated.shutdown().unwrap();
    assert_eq!(
        a.measurements().num_measurements(),
        b.measurements().num_measurements()
    );
}

/// Checkpoint/resume at the facade level: interrupt a session mid-learn,
/// restore it from disk, and the continued run is bit-identical to the
/// uninterrupted one — graph, trace, and final scale factor.
#[test]
fn checkpoint_resume_is_bit_identical_to_uninterrupted_run() {
    let truth = sgl_datasets::grid2d(8, 8);
    let meas = Measurements::generate(&truth, 16, 21).unwrap();
    let cfg = SglConfig::builder()
        .tol(1e-6)
        .max_iterations(60)
        .build()
        .unwrap();

    let mut live = SglSession::from_owned(cfg.clone(), meas).unwrap();
    for _ in 0..3 {
        live.step().unwrap();
    }
    let path =
        std::env::temp_dir().join(format!("sgl-resilience-ckpt-{}.sglck", std::process::id()));
    live.checkpoint(&path).unwrap();
    let mut restored = SglSession::restore(&path, cfg).unwrap();
    std::fs::remove_file(&path).ok();

    live.run_to_completion().unwrap();
    restored.run_to_completion().unwrap();
    let a = live.finish().unwrap();
    let b = restored.finish().unwrap();

    assert_eq!(a.trace, b.trace);
    assert_eq!(a.stop_verdict, b.stop_verdict);
    assert_eq!(
        a.scale_factor.map(f64::to_bits),
        b.scale_factor.map(f64::to_bits)
    );
    assert_same_topology(&a.graph, &b.graph, "resumed vs uninterrupted");
    for (ea, eb) in a.graph.edges().iter().zip(b.graph.edges()) {
        assert_eq!(ea.weight.to_bits(), eb.weight.to_bits());
    }
}

/// NaN/inf measurements are stopped at every ingest boundary — the
/// constructors, the session extension path, and (transitively) serve
/// ingest — as `InvalidMeasurements`, never a downstream solver error.
#[test]
fn non_finite_measurements_are_rejected_at_the_boundary() {
    let mut x = DenseMatrix::zeros(4, 2);
    x.set(0, 0, 1.0);
    x.set(2, 1, f64::NAN);
    assert!(matches!(
        Measurements::from_voltages(x.clone()),
        Err(SglError::InvalidMeasurements(_))
    ));
    let y = DenseMatrix::zeros(4, 2);
    assert!(matches!(
        Measurements::new(x, y.clone()),
        Err(SglError::InvalidMeasurements(_))
    ));
    let mut bad_y = y;
    bad_y.set(1, 1, f64::INFINITY);
    let mut ok_x = DenseMatrix::zeros(4, 2);
    ok_x.set(0, 0, 1.0);
    ok_x.set(1, 0, -1.0);
    ok_x.set(2, 1, 0.5);
    assert!(matches!(
        Measurements::new(ok_x, bad_y),
        Err(SglError::InvalidMeasurements(_))
    ));
}
