//! The unified solver-context API end to end: config-driven solver
//! policies, shared per-revision handles, batched solves, interchangeable
//! resistance estimators — and the solver-free learning path.

use sgl::prelude::*;
use sgl_core::{
    pairwise_effective_resistances, sample_node_pairs, PolicyMethod, ResistanceMethod,
    ResistanceSketch, ReuseMode, SolverPolicy, SpectralSketch,
};
use sgl_linalg::vecops;

fn delaunay_truth() -> sgl_graph::Graph {
    // A Delaunay-triangulated FE-style plate (Bowyer–Watson over random
    // interior points) — irregular, connected, mesh-class.
    sgl_datasets::fe_plate_mesh(120, 2).graph
}

#[test]
fn spectral_sketch_runs_the_full_loop_without_a_laplacian_solver() {
    // The SF-SGL claim in miniature: with the solver-free resistance
    // estimator, voltage-only measurements (no scaling solve), and a
    // converging LOBPCG embedding, the whole learning loop never builds
    // a Laplacian solver — witnessed by the session's own build counter.
    let truth = delaunay_truth();
    let meas = Measurements::generate(&truth, 40, 3).unwrap();
    let volts = Measurements::from_voltages(meas.voltages().clone()).unwrap();
    let cfg = SglConfig::builder()
        .tol(1e-6)
        .max_iterations(100)
        .resistance(ResistanceMethod::SpectralSketch { width: 0 })
        .build()
        .unwrap();
    let mut session = SglSession::new(cfg, &volts).unwrap();
    session.run_to_completion().unwrap();

    // The configured estimator works on the learned graph, solver-free.
    let est = session.resistance_estimator().unwrap();
    assert_eq!(est.name(), "spectral-sketch");
    let pairs = sample_node_pairs(truth.num_nodes(), 10, 5);
    let rs = est.resistances(&pairs).unwrap();
    assert!(rs.iter().all(|r| *r > 0.0 && r.is_finite()));

    assert_eq!(
        session.solver_context().handles_built(),
        0,
        "solver-free run must never construct a Laplacian solver"
    );
    let result = session.finish().unwrap();
    assert!(result.converged);
    assert!(sgl_graph::traversal::is_connected(&result.graph));
}

#[test]
fn solver_policy_controls_every_pipeline_solve() {
    // The same learning run under the dense reference backend must land
    // on the same graph: every solve (measurement generation included)
    // honors the configured policy.
    let truth = sgl_datasets::grid2d(8, 8);
    let default_meas = Measurements::generate(&truth, 20, 7).unwrap();

    let default_cfg = SglConfig::builder().tol(1e-6).build().unwrap();
    let baseline = SglSession::new(default_cfg, &default_meas)
        .unwrap()
        .run()
        .unwrap();

    let dense_policy = SolverPolicy::default().with_method(PolicyMethod::DenseCholesky);
    let dense_meas = Measurements::generate_with(&truth, 20, 7, &dense_policy).unwrap();
    let dense_cfg = SglConfig::builder()
        .tol(1e-6)
        .solver_method(PolicyMethod::DenseCholesky)
        .build()
        .unwrap();
    let mut session = SglSession::new(dense_cfg, &dense_meas).unwrap();
    session.run_to_completion().unwrap();
    let dense = session.finish().unwrap();

    assert_eq!(dense.graph.num_edges(), baseline.graph.num_edges());
    for (a, b) in dense.graph.edges().iter().zip(baseline.graph.edges()) {
        assert_eq!((a.u, a.v), (b.u, b.v));
        assert!((a.weight - b.weight).abs() < 1e-6);
    }
    let (fa, fb) = (dense.scale_factor.unwrap(), baseline.scale_factor.unwrap());
    assert!(
        (fa - fb).abs() < 1e-6,
        "scale factors diverge: {fa} vs {fb}"
    );
}

#[test]
fn per_revision_reuse_shares_handles_across_stages() {
    let truth = sgl_datasets::grid2d(7, 7);
    let meas = Measurements::generate(&truth, 20, 9).unwrap();
    let cfg = SglConfig::builder().tol(1e-6).build().unwrap();
    let mut session = SglSession::new(cfg, &meas).unwrap();
    session.run_to_completion().unwrap();
    // Converged without scaling yet: exact + JL estimators on the final
    // revision share one handle.
    let built_before = session.solver_context().handles_built();
    session.resistance_estimator().unwrap();
    let built_exact = session.solver_context().handles_built();
    assert!(built_exact <= built_before + 1);
    session.resistance_estimator().unwrap();
    assert_eq!(
        session.solver_context().handles_built(),
        built_exact,
        "same revision must reuse the cached handle"
    );
    session.finish().unwrap();

    // PerCall mode rebuilds on each request instead.
    let meas2 = Measurements::generate(&truth, 20, 10).unwrap();
    let cfg = SglConfig::builder()
        .tol(1e-6)
        .solver_reuse(ReuseMode::PerCall)
        .build()
        .unwrap();
    let mut session = SglSession::new(cfg, &meas2).unwrap();
    session.run_to_completion().unwrap();
    let a = session.solver_context().handles_built();
    session.resistance_estimator().unwrap();
    session.resistance_estimator().unwrap();
    assert_eq!(session.solver_context().handles_built(), a + 2);
}

#[test]
fn estimators_agree_within_the_jl_tolerance_bound() {
    // Deterministic companion of the gated proptest: on a mesh and on a
    // Delaunay graph, the JL sketch at the eq.-18 projection count and
    // the spectral sketch both track ExactSolve within ε.
    for (truth, seed) in [(sgl_datasets::grid2d(8, 8), 1u64), (delaunay_truth(), 2u64)] {
        let n = truth.num_nodes();
        let pairs = sample_node_pairs(n, 30, seed);
        let exact = pairwise_effective_resistances(&truth, &pairs).unwrap();

        let eps = 0.5;
        let q = ResistanceSketch::recommended_projections(n, eps);
        let jl = ResistanceSketch::build(&truth, q, seed).unwrap();
        for (k, &(s, t)) in pairs.iter().enumerate() {
            let est = jl.estimate(s, t).unwrap();
            assert!(
                est >= (1.0 - eps) * exact[k] && est <= (1.0 + eps) * exact[k],
                "JL pair ({s},{t}): {est} outside (1±ε)·{}",
                exact[k]
            );
        }

        // Full-width spectral sketch is exact (well inside any ε).
        let spectral = SpectralSketch::build(&truth, 0, seed).unwrap();
        for (k, &(s, t)) in pairs.iter().enumerate() {
            let est = spectral.estimate(s, t).unwrap();
            assert!(
                (est - exact[k]).abs() <= 1e-5 * (1.0 + exact[k]),
                "spectral pair ({s},{t}): {est} vs {}",
                exact[k]
            );
        }
    }
}

#[test]
fn all_policy_methods_agree_on_small_grids() {
    for g in [sgl_datasets::grid2d(6, 6), sgl_datasets::grid2d(4, 9)] {
        let n = g.num_nodes();
        let mut rng = sgl_linalg::Rng::seed_from_u64(11);
        let mut b = rng.normal_vec(n);
        vecops::project_out_mean(&mut b);
        let reference = SolverPolicy::default()
            .with_method(PolicyMethod::DenseCholesky)
            .build_handle(&g)
            .unwrap()
            .solve(&b)
            .unwrap();
        for method in [
            PolicyMethod::Auto,
            PolicyMethod::TreePcg,
            PolicyMethod::AmgPcg,
            PolicyMethod::JacobiPcg,
            PolicyMethod::IcholPcg,
        ] {
            let h = SolverPolicy::default()
                .with_method(method)
                .build_handle(&g)
                .unwrap();
            let x = h.solve(&b).unwrap();
            let d = vecops::sub(&x, &reference);
            assert!(
                vecops::norm2(&d) / vecops::norm2(&reference) < 1e-6,
                "{method:?} disagrees with the dense reference"
            );
            // Batch and sequential paths are identical.
            let batch = h.solve_batch(std::slice::from_ref(&b)).unwrap();
            let d = vecops::sub(&batch[0], &x);
            assert!(vecops::norm2(&d) < 1e-12);
        }
    }
}
