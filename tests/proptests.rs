//! Cross-crate property-based tests (proptest): randomized structural
//! invariants of the measurement pipeline and the learning loop.

// Requires the external `proptest` crate: compiled only with
// `--features property-tests` in a networked environment.
#![cfg(feature = "property-tests")]

use proptest::prelude::*;
use sgl::prelude::*;
use sgl_core::sensitivity::CandidatePool;
use sgl_core::{spectral_embedding, EmbeddingOptions};
use sgl_graph::laplacian::laplacian_csr;
use sgl_graph::mst::maximum_spanning_tree;
use sgl_graph::Graph;
use sgl_linalg::{vecops, Rng, SymEig};

/// A random connected weighted graph: spanning tree + extra edges.
fn random_connected_graph(n: usize, extra: usize, seed: u64) -> Graph {
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for v in 1..n {
        let u = rng.below(v);
        g.add_edge(u, v, 0.2 + rng.uniform() * 5.0);
    }
    let mut added = 0;
    let mut guard = 0;
    while added < extra && guard < extra * 20 {
        guard += 1;
        let u = rng.below(n);
        let v = rng.below(n);
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v, 0.2 + rng.uniform() * 5.0);
            added += 1;
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn measurements_satisfy_laplacian_equation(
        n in 6usize..20,
        m in 2usize..6,
        seed in 0u64..500,
    ) {
        let g = random_connected_graph(n, n / 2, seed);
        let meas = Measurements::generate(&g, m, seed).unwrap();
        let l = laplacian_csr(&g);
        for j in 0..m {
            let x = meas.voltage_vector(j);
            let lx = l.matvec(&x);
            let y = meas.currents().unwrap().column(j);
            for i in 0..n {
                prop_assert!((lx[i] - y[i]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn max_spanning_tree_beats_random_spanning_tree(
        n in 5usize..25,
        seed in 0u64..500,
    ) {
        let g = random_connected_graph(n, n, seed);
        let mst = maximum_spanning_tree(&g);
        let mst_weight: f64 = mst.edge_indices.iter().map(|&i| g.edge(i).weight).sum();
        // A random spanning tree via union-find over shuffled edges.
        let mut rng = Rng::seed_from_u64(seed ^ 0xABCD);
        let mut order: Vec<usize> = (0..g.num_edges()).collect();
        rng.shuffle(&mut order);
        let mut uf = sgl_graph::UnionFind::new(n);
        let mut rnd_weight = 0.0;
        for i in order {
            let e = g.edge(i);
            if uf.union(e.u, e.v) {
                rnd_weight += e.weight;
            }
        }
        prop_assert!(mst_weight >= rnd_weight - 1e-12);
    }

    #[test]
    fn embedding_distance_lower_bounds_effective_resistance(
        n in 8usize..18,
        seed in 0u64..300,
    ) {
        // Eq. 20: z^emb computed from r−1 < N−1 eigenvectors never
        // exceeds the true effective resistance.
        let g = random_connected_graph(n, 3, seed);
        let emb = spectral_embedding(&g, 3, 0.0, &EmbeddingOptions::default()).unwrap();
        let eig = SymEig::compute(&laplacian_csr(&g).to_dense()).unwrap();
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..5 {
            let s = rng.below(n);
            let t = rng.below(n);
            if s == t {
                continue;
            }
            // Exact resistance from the dense pseudoinverse.
            let mut r_exact = 0.0;
            for k in 1..n {
                let v = eig.vectors.column(k);
                let d = v[s] - v[t];
                r_exact += d * d / eig.values[k];
            }
            let z = emb.distance_sq(s, t);
            prop_assert!(
                z <= r_exact * (1.0 + 1e-6) + 1e-9,
                "z^emb {} exceeds R_eff {}",
                z,
                r_exact
            );
        }
    }

    #[test]
    fn sensitivities_match_dense_gradient(
        n in 8usize..16,
        seed in 0u64..300,
    ) {
        // Eq. 13 against the dense eigendecomposition, on the actual
        // SGL candidate pool of a random measurement set.
        let truth = random_connected_graph(n, n / 2, seed);
        let meas = Measurements::generate(&truth, 4, seed).unwrap();
        let knn = sgl_knn::build_knn_graph(
            meas.voltages(),
            &sgl_knn::KnnGraphConfig { k: 3, ..Default::default() },
        );
        let tree = maximum_spanning_tree(&knn);
        let tree_graph = tree.to_graph(&knn);
        let width = 3.min(n - 2);
        let emb = spectral_embedding(&tree_graph, width, 0.0, &EmbeddingOptions::default())
            .unwrap();
        let pool = CandidatePool::from_off_tree(&knn, &tree, &meas);
        let sens = pool.sensitivities(&emb);
        let dense = SymEig::compute(&laplacian_csr(&tree_graph).to_dense()).unwrap();
        for (c, s) in pool.candidates().iter().zip(&sens) {
            let mut zemb = 0.0;
            for j in 1..=width {
                let col = dense.vectors.column(j);
                let d = col[c.u] - col[c.v];
                zemb += d * d / dense.values[j];
            }
            let want = zemb - c.zdata / 4.0;
            prop_assert!((s - want).abs() < 1e-4 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn noise_preserves_shapes_and_currents(
        n in 6usize..15,
        zeta in 0.01f64..0.8,
        seed in 0u64..300,
    ) {
        let g = random_connected_graph(n, 2, seed);
        let meas = Measurements::generate(&g, 3, seed).unwrap();
        let noisy = meas.with_noise(zeta, seed ^ 1);
        prop_assert_eq!(noisy.num_nodes(), meas.num_nodes());
        prop_assert_eq!(noisy.num_measurements(), meas.num_measurements());
        // Currents untouched, relative voltage perturbation == zeta.
        prop_assert_eq!(noisy.currents().unwrap(), meas.currents().unwrap());
        for j in 0..3 {
            let a = meas.voltage_vector(j);
            let b = noisy.voltage_vector(j);
            let rel = vecops::norm2(&vecops::sub(&a, &b)) / vecops::norm2(&a);
            prop_assert!((rel - zeta).abs() < 1e-9);
        }
    }

    #[test]
    fn resistance_estimators_agree_with_exact(
        n in 8usize..20,
        extra in 2usize..6,
        seed in 0u64..300,
    ) {
        // JlSketch at the eq.-18 projection count stays within the
        // (1 ± ε) JL tolerance of ExactSolve, and the solver-free
        // SpectralSketch at full width matches to solver precision.
        let g = random_connected_graph(n, extra, seed);
        let pairs = sgl_core::sample_node_pairs(n, 6, seed);
        let exact = sgl_core::pairwise_effective_resistances(&g, &pairs).unwrap();
        let spectral = sgl_core::SpectralSketch::build(&g, 0, seed).unwrap();
        for (k, &(s, t)) in pairs.iter().enumerate() {
            let est = spectral.estimate(s, t).unwrap();
            prop_assert!(
                (est - exact[k]).abs() <= 1e-5 * (1.0 + exact[k].abs()),
                "spectral ({s},{t}): {} vs {}",
                est,
                exact[k]
            );
        }
        let eps = 0.5;
        let q = sgl_core::ResistanceSketch::recommended_projections(n, eps);
        let jl = sgl_core::ResistanceSketch::build(&g, q, seed ^ 0x9E37).unwrap();
        for (k, &(s, t)) in pairs.iter().enumerate() {
            let est = jl.estimate(s, t).unwrap();
            prop_assert!(
                est >= (1.0 - eps) * exact[k] && est <= (1.0 + eps) * exact[k],
                "jl ({s},{t}): {} outside (1±ε)·{}",
                est,
                exact[k]
            );
        }
    }

    #[test]
    fn solver_backends_agree_on_small_random_graphs(
        n in 6usize..20,
        extra in 0usize..8,
        seed in 0u64..300,
    ) {
        use sgl_core::{PolicyMethod, SolverPolicy};
        let g = random_connected_graph(n, extra, seed);
        let mut rng = Rng::seed_from_u64(seed ^ 0xF00);
        let mut b = rng.normal_vec(n);
        vecops::project_out_mean(&mut b);
        let reference = SolverPolicy::default()
            .with_method(PolicyMethod::DenseCholesky)
            .build_handle(&g)
            .unwrap()
            .solve(&b)
            .unwrap();
        for method in [
            PolicyMethod::Auto,
            PolicyMethod::TreePcg,
            PolicyMethod::AmgPcg,
            PolicyMethod::JacobiPcg,
            PolicyMethod::IcholPcg,
        ] {
            let h = SolverPolicy::default()
                .with_method(method)
                .build_handle(&g)
                .unwrap();
            let x = h.solve(&b).unwrap();
            let d = vecops::sub(&x, &reference);
            prop_assert!(
                vecops::norm2(&d) / vecops::norm2(&reference).max(1e-300) < 1e-6,
                "{:?} disagrees with the dense reference",
                method
            );
        }
    }

    #[test]
    fn scaling_inverts_uniform_weight_distortion(
        n in 8usize..16,
        factor in 0.05f64..20.0,
        seed in 0u64..300,
    ) {
        let truth = random_connected_graph(n, n / 3, seed);
        let meas = Measurements::generate(&truth, 6, seed).unwrap();
        let mut distorted = truth.clone();
        distorted.scale_weights(factor);
        let applied = sgl_core::spectral_edge_scaling(&mut distorted, &meas).unwrap();
        prop_assert!((applied * factor - 1.0).abs() < 1e-5);
    }
}
