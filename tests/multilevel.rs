//! Cross-crate contract of the multilevel subsystem: `learn_multilevel`
//! tracks flat `Sgl::learn` spectrally, the hierarchy is bit-identical
//! across thread counts, and resistance sparsification preserves
//! connectivity and the low spectrum.

use sgl::prelude::*;
use sgl_core::{compare_spectra, SpectrumMethod};
use sgl_graph::traversal::is_connected;
use sgl_multilevel::HierarchyOptions;

fn quick_config(parallelism: usize) -> SglConfig {
    SglConfig::builder()
        .tol(1e-6)
        .max_iterations(200)
        .parallelism(parallelism)
        .build()
        .unwrap()
}

fn quick_opts(coarsest: usize) -> MultilevelOptions {
    MultilevelOptions {
        hierarchy: HierarchyOptions {
            coarsest_size: coarsest,
            ..HierarchyOptions::default()
        },
        ..MultilevelOptions::default()
    }
}

#[test]
fn multilevel_tracks_flat_spectrum_with_fewer_fine_embeds() {
    let truth = sgl_datasets::grid2d(20, 20);
    let meas = Measurements::generate(&truth, 30, 17).unwrap();
    let flat = Sgl::new(quick_config(0)).learn(&meas).unwrap();
    let multi = learn_multilevel(&quick_config(0), &meas, &quick_opts(100)).unwrap();

    assert!(multi.num_levels() >= 2, "sizes {:?}", multi.level_sizes);
    assert!(is_connected(&multi.graph));
    // The whole flat loop ran only at the coarsest level; its trace is
    // the coarse trace.
    assert!(*multi.level_sizes.last().unwrap() <= 100);
    assert!(!multi.coarse.trace.is_empty());

    let cmp = compare_spectra(&flat.graph, &multi.graph, 6, SpectrumMethod::ShiftInvert).unwrap();
    assert!(
        cmp.mean_relative_error < 0.15,
        "multilevel spectrum drifted {:.3} from flat",
        cmp.mean_relative_error
    );
    assert!(cmp.correlation > 0.97, "corr {}", cmp.correlation);
}

#[test]
fn multilevel_learning_is_bit_identical_across_thread_counts() {
    let truth = sgl_datasets::grid2d(14, 14);
    let meas = Measurements::generate(&truth, 25, 29).unwrap();
    let serial = learn_multilevel(&quick_config(1), &meas, &quick_opts(60)).unwrap();
    for threads in [2usize, 4, 0] {
        let par_run = learn_multilevel(&quick_config(threads), &meas, &quick_opts(60)).unwrap();
        assert_eq!(
            serial.level_sizes, par_run.level_sizes,
            "parallelism={threads}: hierarchy diverged"
        );
        assert_eq!(serial.graph.num_edges(), par_run.graph.num_edges());
        for (a, b) in serial.graph.edges().iter().zip(par_run.graph.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v), "parallelism={threads}: topology");
            assert_eq!(
                a.weight, b.weight,
                "parallelism={threads}: weights must be bit-identical"
            );
        }
        assert_eq!(serial.scale_factor, par_run.scale_factor);
    }
}

#[test]
fn sparsify_by_resistance_preserves_spectrum_and_connectivity() {
    let g = sgl_datasets::grid2d(13, 13); // density ~1.85
    let opts = SparsifyOptions {
        max_relative_error: 0.35,
        ..SparsifyOptions::default()
    };
    let s = sparsify_by_resistance(&g, 1.6, &opts).unwrap();
    assert!(is_connected(&s.graph));
    assert!(s.graph.density() <= 1.6);
    assert!(s.dropped_edges > 0);
    let cmp = s.spectral.expect("spectral check requested");
    assert!(
        cmp.mean_relative_error < 0.35,
        "{}",
        cmp.mean_relative_error
    );
    assert!(s.within_tolerance);
}

#[test]
fn multilevel_uses_solver_stats_and_reports_every_level() {
    let truth = sgl_datasets::grid2d(14, 14);
    let meas = Measurements::generate(&truth, 20, 31).unwrap();
    let multi = learn_multilevel(&quick_config(0), &meas, &quick_opts(60)).unwrap();
    assert_eq!(multi.reports.len(), multi.num_levels());
    // Coarsest report first, finest last, node counts matching the
    // hierarchy.
    let mut sizes: Vec<usize> = multi.reports.iter().map(|r| r.nodes).collect();
    sizes.reverse();
    assert_eq!(sizes, multi.level_sizes);
    // The V-cycle's solves were tracked (scaling at minimum).
    assert!(multi.solver_stats.solves > 0);
    assert!(multi.scale_factor.is_some());
}
