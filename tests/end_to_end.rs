//! End-to-end pipeline tests: measurements → SGL → learned graph, with
//! the paper's qualitative claims as assertions.

use sgl::prelude::*;
use sgl_core::{compare_spectra, objective, ObjectiveOptions, SpectrumMethod};
use sgl_graph::traversal::is_connected;

fn config() -> SglConfig {
    SglConfig::default().with_tol(1e-8).with_max_iterations(150)
}

#[test]
fn mesh_learning_preserves_spectrum_at_tree_density() {
    let truth = sgl_datasets::grid2d(15, 15);
    let meas = Measurements::generate(&truth, 40, 1).unwrap();
    let result = Sgl::new(config()).learn(&meas).unwrap();

    assert!(is_connected(&result.graph));
    // Ultra-sparse: close to a spanning tree, far sparser than the truth.
    assert!(
        result.density() < 1.3,
        "density {} should be near 1",
        result.density()
    );
    let cmp = compare_spectra(&truth, &result.graph, 10, SpectrumMethod::ShiftInvert).unwrap();
    assert!(
        cmp.correlation > 0.93,
        "low-spectrum correlation {}",
        cmp.correlation
    );
}

#[test]
fn fe_mesh_learning_works() {
    let mesh = sgl_datasets::fe_plate_mesh(500, 3);
    let meas = Measurements::generate(&mesh.graph, 40, 2).unwrap();
    let result = Sgl::new(config()).learn(&meas).unwrap();
    assert!(is_connected(&result.graph));
    assert!(result.density() < 1.4);
    let cmp = compare_spectra(&mesh.graph, &result.graph, 8, SpectrumMethod::ShiftInvert).unwrap();
    assert!(cmp.correlation > 0.9, "correlation {}", cmp.correlation);
}

#[test]
fn circuit_learning_works() {
    let truth = sgl_datasets::circuit_grid(22, 22, 1.9, 5);
    let meas = Measurements::generate(&truth, 40, 3).unwrap();
    let result = Sgl::new(config()).learn(&meas).unwrap();
    assert!(is_connected(&result.graph));
    let cmp = compare_spectra(&truth, &result.graph, 8, SpectrumMethod::ShiftInvert).unwrap();
    assert!(cmp.correlation > 0.9, "correlation {}", cmp.correlation);
}

#[test]
fn objective_rises_along_the_densification_path() {
    // The core claim of the gradient interpretation (eq. 13): every batch
    // of added edges increases the (unscaled) objective.
    let truth = sgl_datasets::grid2d(10, 10);
    let meas = Measurements::generate(&truth, 30, 4).unwrap();
    let result = Sgl::new(config()).learn(&meas).unwrap();
    assert!(result.trace.len() >= 3);
    let opts = ObjectiveOptions {
        num_eigenvalues: 30,
        ..ObjectiveOptions::default()
    };
    // The sensitivity of eq. 13 is a first-order gradient; a finite edge
    // addition gains log(1 + w·R_eff) < w·R_eff, so tiny dips are
    // possible. Require a clear overall rise with no significant dip.
    let values: Vec<f64> = (0..result.trace.len())
        .step_by(2)
        .map(|i| {
            objective(&result.graph_at_iteration(i).unwrap(), &meas, &opts)
                .unwrap()
                .total
        })
        .collect();
    let first = values[0];
    let last = *values.last().unwrap();
    assert!(
        last > first,
        "objective should rise overall: {first} -> {last}"
    );
    let range = (last - first).abs().max(1e-9);
    for w in values.windows(2) {
        assert!(
            w[1] > w[0] - 0.05 * range,
            "significant objective dip: {} -> {}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn learning_is_deterministic() {
    let truth = sgl_datasets::grid2d(9, 9);
    let meas = Measurements::generate(&truth, 25, 5).unwrap();
    let a = Sgl::new(config()).learn(&meas).unwrap();
    let b = Sgl::new(config()).learn(&meas).unwrap();
    assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    for (ea, eb) in a.graph.edges().iter().zip(b.graph.edges()) {
        assert_eq!((ea.u, ea.v), (eb.u, eb.v));
        assert_eq!(ea.weight, eb.weight);
    }
    assert_eq!(a.trace.len(), b.trace.len());
}

#[test]
fn smax_first_vs_last_decreases() {
    let truth = sgl_datasets::grid2d(12, 12);
    let meas = Measurements::generate(&truth, 30, 6).unwrap();
    let result = Sgl::new(config()).learn(&meas).unwrap();
    let first = result.trace.first().unwrap().smax;
    let last = result.trace.last().unwrap().smax;
    assert!(last < first, "smax should fall: {first} -> {last}");
}

#[test]
fn hnsw_backend_learns_comparably() {
    use sgl_knn::{HnswParams, KnnMethod};
    let truth = sgl_datasets::grid2d(12, 12);
    let meas = Measurements::generate(&truth, 30, 7).unwrap();
    let cfg = SglConfig::builder()
        .k(5)
        .tol(1e-8)
        .max_iterations(150)
        .knn_method(KnnMethod::Hnsw(HnswParams::default()))
        .build()
        .unwrap();
    let result = Sgl::new(cfg).learn(&meas).unwrap();
    assert!(is_connected(&result.graph));
    let cmp = compare_spectra(&truth, &result.graph, 8, SpectrumMethod::ShiftInvert).unwrap();
    assert!(cmp.correlation > 0.9, "correlation {}", cmp.correlation);
}
